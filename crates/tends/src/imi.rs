//! Infection mutual information (paper §IV-B, Eqs. 24–25).
//!
//! Plain mutual information cannot distinguish positively correlated
//! infections ("u infected ⇒ v likely infected", the signature of an
//! influence relationship) from negatively correlated ones. The paper
//! therefore scores each pair with the *infection MI*
//!
//! ```text
//! IMI(X_i, X_j) = mi(1,1) + mi(0,0) − |mi(1,0)| − |mi(0,1)|
//! ```
//!
//! where `mi(a,b) = P̂(X_i=a, X_j=b) · log₂ (P̂(a,b) / (P̂(a)·P̂(b)))` is one
//! cell of the MI sum. Concordant cells reward, discordant cells penalize.

use diffnet_simulate::{NodeColumns, PairCounts};

/// One cell of the mutual-information sum:
/// `p_ab · log₂(p_ab / (p_a · p_b))`, with `0 log 0 = 0`.
///
/// Can be negative (when the joint is rarer than independence predicts).
#[inline]
pub fn mi_cell(p_ab: f64, p_a: f64, p_b: f64) -> f64 {
    if p_ab <= 0.0 || p_a <= 0.0 || p_b <= 0.0 {
        0.0
    } else {
        p_ab * (p_ab / (p_a * p_b)).log2()
    }
}

/// Precomputed `log2 k` for every count `k ∈ 0..=β`, shared across all
/// `n(n−1)/2` pairs of a correlation-matrix build. Each MI cell needs up
/// to four logarithms of integer counts bounded by `β`, so one table of
/// `β + 1` entries replaces millions of `log2` calls with loads.
/// `table[k]` is exactly `(k as f64).log2()`, which keeps lookup-based
/// cells bit-identical to the direct evaluation.
pub struct Log2Table {
    values: Vec<f64>,
}

impl Log2Table {
    /// Builds the table covering counts `0..=beta`.
    pub fn new(beta: u64) -> Log2Table {
        Log2Table {
            values: (0..=beta).map(|k| (k as f64).log2()).collect(),
        }
    }

    #[inline]
    fn log2(&self, k: u64) -> f64 {
        self.values[k as usize]
    }
}

/// The four MI cells of a pair, estimated from joint counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiCells {
    /// `mi(X_i = 1, X_j = 1)`.
    pub c11: f64,
    /// `mi(X_i = 1, X_j = 0)`.
    pub c10: f64,
    /// `mi(X_i = 0, X_j = 1)`.
    pub c01: f64,
    /// `mi(X_i = 0, X_j = 0)`.
    pub c00: f64,
}

impl MiCells {
    /// Estimates the cells from pair counts over `β` processes.
    ///
    /// All-zero counts (`β = 0`) give all-zero cells. The probabilities
    /// in `mi_cell` are all counts over `β`, so each cell is evaluated
    /// in the count domain as
    /// `(n_ab/β) · (log2 n_ab + log2 β − log2 n_a − log2 n_b)` —
    /// the form [`Log2Table`] turns into table lookups for bulk matrix
    /// builds. Both evaluations call `f64::log2` on the same integer
    /// inputs, so they are bit-identical.
    pub fn from_counts(pc: &PairCounts) -> MiCells {
        Self::cells(pc, |k| (k as f64).log2())
    }

    /// [`from_counts`](Self::from_counts) with every `log2` served from a
    /// precomputed table — bit-identical, and the form every `O(n²)`
    /// correlation-matrix pass uses.
    pub fn from_counts_with(pc: &PairCounts, lut: &Log2Table) -> MiCells {
        Self::cells(pc, |k| lut.log2(k))
    }

    #[inline]
    fn cells(pc: &PairCounts, log2: impl Fn(u64) -> f64) -> MiCells {
        let beta = pc.total();
        if beta == 0 {
            return MiCells {
                c11: 0.0,
                c10: 0.0,
                c01: 0.0,
                c00: 0.0,
            };
        }
        let inv_b = 1.0 / beta as f64;
        let lb = log2(beta);
        let i1 = pc.n11 + pc.n10;
        let i0 = pc.n01 + pc.n00;
        let j1 = pc.n11 + pc.n01;
        let j0 = pc.n10 + pc.n00;
        let cell = |n_ab: u64, n_a: u64, n_b: u64| {
            if n_ab == 0 || n_a == 0 || n_b == 0 {
                0.0
            } else {
                n_ab as f64 * inv_b * (log2(n_ab) + lb - log2(n_a) - log2(n_b))
            }
        };
        MiCells {
            c11: cell(pc.n11, i1, j1),
            c10: cell(pc.n10, i1, j0),
            c01: cell(pc.n01, i0, j1),
            c00: cell(pc.n00, i0, j0),
        }
    }

    /// Traditional mutual information: the sum of all four cells (Eq. 24).
    /// Non-negative up to floating-point noise.
    pub fn mi(&self) -> f64 {
        self.c11 + self.c10 + self.c01 + self.c00
    }

    /// Infection MI (Eq. 25): concordant cells minus the magnitudes of
    /// discordant cells. Negative when infections are anti-correlated,
    /// near 0 when independent, positive when positively correlated.
    pub fn imi(&self) -> f64 {
        self.c11 + self.c00 - self.c10.abs() - self.c01.abs()
    }
}

/// Infection MI of a node pair directly from joint counts.
pub fn imi(pc: &PairCounts) -> f64 {
    MiCells::from_counts(pc).imi()
}

/// Traditional MI of a node pair directly from joint counts.
pub fn mi(pc: &PairCounts) -> f64 {
    MiCells::from_counts(pc).mi()
}

/// Which pairwise correlation measure drives candidate pruning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CorrelationMeasure {
    /// Infection MI (Eq. 25) — the paper's measure.
    #[default]
    Imi,
    /// Traditional MI (Eq. 24) — kept for the paper's Fig. 10–11 ablation.
    Mi,
}

/// Symmetric matrix of pairwise correlation values over all node pairs.
///
/// The diagonal is unused and fixed at 0.
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    n: usize,
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Computes all pairwise values from the column view of a status
    /// matrix with the chosen measure. `O(n²)` pair counts, each a few
    /// popcounts per 64 processes. Single-threaded; see
    /// [`compute_parallel`](Self::compute_parallel).
    pub fn compute(cols: &NodeColumns, measure: CorrelationMeasure) -> Self {
        Self::compute_parallel(cols, measure, 1)
    }

    /// Parallel variant of [`compute`](Self::compute): rows of the upper
    /// triangle are claimed by `threads` workers (0 = all cores) in small
    /// chunks, since row `i` costs `n − i − 1` cells and static splitting
    /// would leave late workers idle. Each cell is a pure function of its
    /// pair, so the result is bit-identical for every thread count.
    pub fn compute_parallel(
        cols: &NodeColumns,
        measure: CorrelationMeasure,
        threads: usize,
    ) -> Self {
        Self::compute_observed(
            cols,
            measure,
            threads,
            diffnet_observe::Recorder::disabled(),
        )
    }

    /// [`compute_parallel`](Self::compute_parallel) that also reports pool
    /// utilization: per-worker chunk claims land in the recorder under the
    /// `correlation_matrix` region. The matrix itself is bit-identical to
    /// the unobserved variant at every thread count.
    ///
    /// The pair loop is the cache-blocked
    /// [`NodeColumns::pair_counts_block`] kernel: the upper triangle is cut
    /// into T×T tiles (T = [`NodeColumns::pair_tile_size`], lane-aligned
    /// and chosen so a tile pair's columns stay L1-resident), `n11` is one
    /// SIMD AND+popcount stream per pair with the other three cells derived
    /// from the per-column ones counts — computed once up front and shared
    /// by every tile — and constant columns short-circuit the word walk
    /// entirely. Tiles are scheduled cost-aware — each tile's claim weight
    /// is its exact pair count — so the dense diagonal tiles don't
    /// serialize the pool. Per-tile results are *positional* (`Vec<f64>` in
    /// the kernel's deterministic row-major emission order, a third of the
    /// memory of `(i, j, value)` triples) and land in per-tile slots,
    /// keeping the matrix bit-identical at every thread count.
    pub fn compute_observed(
        cols: &NodeColumns,
        measure: CorrelationMeasure,
        threads: usize,
        rec: &diffnet_observe::Recorder,
    ) -> Self {
        let n = cols.num_nodes();
        let ones = cols.ones_counts();
        let tile = cols.pair_tile_size();
        let num_tiles = n.div_ceil(tile);
        let mut blocks: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
        let mut costs: Vec<u64> = Vec::new();
        for bi in 0..num_tiles {
            let rows = bi * tile..((bi + 1) * tile).min(n);
            for bj in bi..num_tiles {
                let jcols = bj * tile..((bj + 1) * tile).min(n);
                // Exact pair count of the block (diagonal blocks are
                // triangular) — the block's scheduling weight.
                let pairs: u64 = rows
                    .clone()
                    .map(|i| jcols.end.saturating_sub(jcols.start.max(i + 1)) as u64)
                    .sum();
                if pairs > 0 {
                    blocks.push((rows.clone(), jcols));
                    costs.push(pairs);
                }
            }
        }
        let lut = Log2Table::new(cols.num_processes() as u64);
        let (tiles, pool) = crate::parallel::run_weighted_stats(
            &costs,
            4,
            threads,
            || (),
            |_, b| {
                let (rows, jcols) = &blocks[b];
                let mut out: Vec<f64> = Vec::with_capacity(costs[b] as usize);
                cols.pair_counts_block(rows.clone(), jcols.clone(), &ones, &mut |_, _, pc| {
                    let cells = MiCells::from_counts_with(&pc, &lut);
                    out.push(match measure {
                        CorrelationMeasure::Imi => cells.imi(),
                        CorrelationMeasure::Mi => cells.mi(),
                    });
                });
                out
            },
        );
        if rec.is_enabled() {
            rec.worker_chunks("correlation_matrix", &pool.chunks_per_worker);
            rec.add("correlation_pairs", (n * n.saturating_sub(1) / 2) as u64);
            rec.add("correlation_tiles", blocks.len() as u64);
        }
        let mut values = vec![0.0; n * n];
        for (b, block) in tiles.into_iter().enumerate() {
            // Re-derive each value's pair by walking the block exactly the
            // way `pair_counts_block` emits: row-major over `i`, then
            // `j > i` within the column tile.
            let (rows, jcols) = &blocks[b];
            let mut vals = block.into_iter();
            for i in rows.clone() {
                for j in jcols.start.max(i + 1)..jcols.end {
                    let v = vals.next().expect("one value per block pair");
                    values[i * n + j] = v;
                    values[j * n + i] = v;
                }
            }
            debug_assert!(vals.next().is_none(), "block emitted extra pairs");
        }
        CorrelationMatrix { n, values }
    }

    /// [`compute_observed`](Self::compute_observed) that also captures the
    /// pairwise *sufficient statistics* (`β`, per-column ones counts, and
    /// the upper-triangle `n11` counts) the values were derived from, in
    /// the same tiled kernel pass — no second column scan. The statistics
    /// are what incremental re-estimation persists: appended processes
    /// only ever *add* to these integer counts, so a warm restart can
    /// rebuild the exact combined-matrix correlation values without
    /// touching the historical columns (see [`PairStats`]).
    pub fn compute_observed_with_stats(
        cols: &NodeColumns,
        measure: CorrelationMeasure,
        threads: usize,
        rec: &diffnet_observe::Recorder,
    ) -> (Self, PairStats) {
        let n = cols.num_nodes();
        let ones = cols.ones_counts();
        let tile = cols.pair_tile_size();
        let num_tiles = n.div_ceil(tile);
        let mut blocks: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
        let mut costs: Vec<u64> = Vec::new();
        for bi in 0..num_tiles {
            let rows = bi * tile..((bi + 1) * tile).min(n);
            for bj in bi..num_tiles {
                let jcols = bj * tile..((bj + 1) * tile).min(n);
                let pairs: u64 = rows
                    .clone()
                    .map(|i| jcols.end.saturating_sub(jcols.start.max(i + 1)) as u64)
                    .sum();
                if pairs > 0 {
                    blocks.push((rows.clone(), jcols));
                    costs.push(pairs);
                }
            }
        }
        let lut = Log2Table::new(cols.num_processes() as u64);
        let (tiles, pool) = crate::parallel::run_weighted_stats(
            &costs,
            4,
            threads,
            || (),
            |_, b| {
                let (rows, jcols) = &blocks[b];
                let mut out: Vec<(f64, u64)> = Vec::with_capacity(costs[b] as usize);
                cols.pair_counts_block(rows.clone(), jcols.clone(), &ones, &mut |_, _, pc| {
                    let cells = MiCells::from_counts_with(&pc, &lut);
                    let v = match measure {
                        CorrelationMeasure::Imi => cells.imi(),
                        CorrelationMeasure::Mi => cells.mi(),
                    };
                    out.push((v, pc.n11));
                });
                out
            },
        );
        if rec.is_enabled() {
            rec.worker_chunks("correlation_matrix", &pool.chunks_per_worker);
            rec.add("correlation_pairs", (n * n.saturating_sub(1) / 2) as u64);
            rec.add("correlation_tiles", blocks.len() as u64);
        }
        let mut values = vec![0.0; n * n];
        let mut n11 = vec![0u64; n * n.saturating_sub(1) / 2];
        for (b, block) in tiles.into_iter().enumerate() {
            let (rows, jcols) = &blocks[b];
            let mut vals = block.into_iter();
            for i in rows.clone() {
                for j in jcols.start.max(i + 1)..jcols.end {
                    let (v, c) = vals.next().expect("one value per block pair");
                    values[i * n + j] = v;
                    values[j * n + i] = v;
                    n11[tri_index(n, i, j)] = c;
                }
            }
            debug_assert!(vals.next().is_none(), "block emitted extra pairs");
        }
        let stats = PairStats {
            n,
            beta: cols.num_processes() as u64,
            ones,
            n11,
        };
        (CorrelationMatrix { n, values }, stats)
    }

    /// The pre-tiling implementation: one [`NodeColumns::pair_counts`]
    /// column walk per pair, single-threaded. Kept as the equivalence
    /// oracle for the tiled kernel (results must stay bit-identical) and
    /// as the baseline the benchmarks compare against.
    pub fn compute_reference(cols: &NodeColumns, measure: CorrelationMeasure) -> Self {
        let n = cols.num_nodes();
        let lut = Log2Table::new(cols.num_processes() as u64);
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let cells = MiCells::from_counts_with(&cols.pair_counts(i as u32, j as u32), &lut);
                let v = match measure {
                    CorrelationMeasure::Imi => cells.imi(),
                    CorrelationMeasure::Mi => cells.mi(),
                };
                values[i * n + j] = v;
                values[j * n + i] = v;
            }
        }
        CorrelationMatrix { n, values }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The value for pair `(i, j)`; 0 on the diagonal.
    #[inline]
    pub fn get(&self, i: u32, j: u32) -> f64 {
        self.values[i as usize * self.n + j as usize]
    }

    /// All strictly-upper-triangle values (each unordered pair once), the
    /// input to threshold selection.
    pub fn upper_triangle(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * (self.n.saturating_sub(1)) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                out.push(self.values[i * self.n + j]);
            }
        }
        out
    }
}

/// Index of pair `(i, j)` (`i < j`) in a row-major upper-triangle layout.
#[inline]
fn tri_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Pairwise sufficient statistics of a status matrix: `β`, the per-column
/// ones counts, and the upper-triangle `n11` joint counts. Together these
/// determine every [`PairCounts`] cell (`n10 = ones_i − n11`, `n01 = ones_j
/// − n11`, `n00 = β + n11 − ones_i − ones_j` — the same derivations
/// [`NodeColumns::pair_counts_block`] uses), hence the exact correlation
/// matrix, τ, and candidate sets of the run that produced them.
///
/// The statistics are *additive over processes*: appending cascades only
/// adds the appended columns' counts cell-wise, so [`append`](Self::append)
/// updates them in one kernel pass over the new columns alone — `O(n²)`
/// popcounts over `β_new` bits, independent of the history length. This is
/// the warm state incremental re-estimation persists in the checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairStats {
    n: usize,
    beta: u64,
    ones: Vec<u64>,
    n11: Vec<u64>,
}

impl PairStats {
    /// Rebuilds statistics from persisted parts, validating shape.
    pub fn from_parts(beta: u64, ones: Vec<u64>, n11: Vec<u64>) -> Result<PairStats, String> {
        let n = ones.len();
        let pairs = n * n.saturating_sub(1) / 2;
        if n11.len() != pairs {
            return Err(format!(
                "pair stats shape mismatch: {n} nodes need {pairs} n11 counts, got {}",
                n11.len()
            ));
        }
        if let Some(i) = ones.iter().position(|&o| o > beta) {
            return Err(format!(
                "pair stats ones[{i}] = {} exceeds beta = {beta}",
                ones[i]
            ));
        }
        // Every 2×2 cell the statistics imply must be a non-negative
        // count, or later derivations would underflow on hand-edited or
        // corrupted input: n11 ≤ min(ones_i, ones_j) and
        // β + n11 ≥ ones_i + ones_j (n00 ≥ 0).
        let mut t = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = n11[t];
                if v > ones[i].min(ones[j]) || ones[i] + ones[j] > beta + v {
                    return Err(format!(
                        "pair stats are inconsistent at pair ({i}, {j}): \
                         n11 = {v}, ones = ({}, {}), beta = {beta}",
                        ones[i], ones[j]
                    ));
                }
                t += 1;
            }
        }
        Ok(PairStats { n, beta, ones, n11 })
    }

    /// Computes the statistics directly (test/oracle convenience; the
    /// production path captures them alongside the correlation matrix via
    /// [`CorrelationMatrix::compute_observed_with_stats`]).
    pub fn compute(cols: &NodeColumns, threads: usize) -> PairStats {
        CorrelationMatrix::compute_observed_with_stats(
            cols,
            CorrelationMeasure::Imi,
            threads,
            diffnet_observe::Recorder::disabled(),
        )
        .1
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total processes `β` accumulated so far.
    pub fn num_processes(&self) -> u64 {
        self.beta
    }

    /// Per-column ones counts.
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Upper-triangle `n11` counts, row-major (`(0,1), (0,2), …`).
    pub fn n11(&self) -> &[u64] {
        &self.n11
    }

    /// Content digest (FNV-1a over `β`, `n`, ones, and `n11`): a cheap
    /// integrity check over the full sufficient statistics. Any edited
    /// count changes the digest, which is how a checkpoint detects
    /// tampered statistics in `O(n²)` integer mixing instead of
    /// re-deriving the correlation pipeline they imply.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.beta);
        eat(self.n as u64);
        for &v in &self.ones {
            eat(v);
        }
        for &v in &self.n11 {
            eat(v);
        }
        h
    }

    /// The full joint counts of pair `(i, j)`, reconstructed exactly as the
    /// tiled kernel derives them.
    #[inline]
    pub fn pair_counts(&self, i: usize, j: usize) -> PairCounts {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let n11 = self.n11[tri_index(self.n, a, b)];
        let (oi, oj) = (self.ones[i], self.ones[j]);
        PairCounts {
            n11,
            n10: oi - n11,
            n01: oj - n11,
            n00: self.beta + n11 - oi - oj,
        }
    }

    /// Folds `appended` process columns into the statistics — the
    /// incremental-update kernel pass. Runs the same cost-aware tiled
    /// [`NodeColumns::pair_counts_block`] schedule as the full computation,
    /// but over the appended columns only; integer addition is
    /// order-independent, so the result is exact at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `appended` has a different node count.
    pub fn append(&mut self, appended: &NodeColumns, threads: usize) {
        assert_eq!(
            appended.num_nodes(),
            self.n,
            "appended cascades must cover the same nodes"
        );
        let ones = appended.ones_counts();
        let tile = appended.pair_tile_size();
        let num_tiles = self.n.div_ceil(tile);
        let mut blocks: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
        let mut costs: Vec<u64> = Vec::new();
        for bi in 0..num_tiles {
            let rows = bi * tile..((bi + 1) * tile).min(self.n);
            for bj in bi..num_tiles {
                let jcols = bj * tile..((bj + 1) * tile).min(self.n);
                let pairs: u64 = rows
                    .clone()
                    .map(|i| jcols.end.saturating_sub(jcols.start.max(i + 1)) as u64)
                    .sum();
                if pairs > 0 {
                    blocks.push((rows.clone(), jcols));
                    costs.push(pairs);
                }
            }
        }
        let (tiles, _) = crate::parallel::run_weighted_stats(
            &costs,
            4,
            threads,
            || (),
            |_, b| {
                let (rows, jcols) = &blocks[b];
                let mut out: Vec<u64> = Vec::with_capacity(costs[b] as usize);
                appended.pair_counts_block(rows.clone(), jcols.clone(), &ones, &mut |_, _, pc| {
                    out.push(pc.n11);
                });
                out
            },
        );
        for (b, block) in tiles.into_iter().enumerate() {
            let (rows, jcols) = &blocks[b];
            let mut vals = block.into_iter();
            for i in rows.clone() {
                for j in jcols.start.max(i + 1)..jcols.end {
                    let c = vals.next().expect("one count per block pair");
                    self.n11[tri_index(self.n, i, j)] += c;
                }
            }
        }
        for (o, &a) in self.ones.iter_mut().zip(ones.iter()) {
            *o += a;
        }
        self.beta += appended.num_processes() as u64;
    }

    /// The correlation matrix these statistics determine — bit-identical
    /// to [`CorrelationMatrix::compute_observed`] over the matching status
    /// matrix, because each pair's [`MiCells`] are the same float function
    /// of the same integer counts. Pure float work per pair, so it runs
    /// single-threaded without a kernel pass.
    pub fn correlation(&self, measure: CorrelationMeasure) -> CorrelationMatrix {
        let n = self.n;
        let lut = Log2Table::new(self.beta);
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let cells = MiCells::from_counts_with(&self.pair_counts(i, j), &lut);
                let v = match measure {
                    CorrelationMeasure::Imi => cells.imi(),
                    CorrelationMeasure::Mi => cells.mi(),
                };
                values[i * n + j] = v;
                values[j * n + i] = v;
            }
        }
        CorrelationMatrix { n, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::StatusMatrix;

    fn counts(n11: u64, n10: u64, n01: u64, n00: u64) -> PairCounts {
        PairCounts { n11, n10, n01, n00 }
    }

    #[test]
    fn independent_variables_have_zero_mi_and_imi() {
        // Perfectly factorized joint: p(a,b) = p(a)p(b).
        let pc = counts(25, 25, 25, 25);
        assert!(mi(&pc).abs() < 1e-12);
        assert!(imi(&pc).abs() < 1e-12);
    }

    #[test]
    fn perfectly_positively_correlated() {
        let pc = counts(50, 0, 0, 50);
        assert!((mi(&pc) - 1.0).abs() < 1e-12, "1 bit of MI");
        assert!((imi(&pc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_negatively_correlated() {
        let pc = counts(0, 50, 50, 0);
        // Traditional MI cannot tell the difference...
        assert!((mi(&pc) - 1.0).abs() < 1e-12);
        // ...but infection MI goes negative.
        assert!(imi(&pc) < -0.9);
    }

    #[test]
    fn positive_correlation_gives_positive_imi() {
        let pc = counts(40, 10, 10, 40);
        assert!(imi(&pc) > 0.1);
        assert!(mi(&pc) > 0.0);
    }

    #[test]
    fn imi_is_symmetric_in_roles() {
        let pc_ij = counts(30, 20, 10, 40);
        let pc_ji = counts(30, 10, 20, 40);
        assert!((imi(&pc_ij) - imi(&pc_ji)).abs() < 1e-12);
    }

    #[test]
    fn zero_beta_is_all_zero() {
        let pc = counts(0, 0, 0, 0);
        assert_eq!(mi(&pc), 0.0);
        assert_eq!(imi(&pc), 0.0);
    }

    #[test]
    fn constant_variable_yields_zero() {
        // X_j always infected: no information about anything.
        let pc = counts(30, 0, 70, 0);
        assert!(mi(&pc).abs() < 1e-12);
        assert!(imi(&pc).abs() < 1e-12);
    }

    #[test]
    fn mi_cell_zero_probability_convention() {
        assert_eq!(mi_cell(0.0, 0.5, 0.5), 0.0);
        assert_eq!(mi_cell(0.2, 0.0, 0.5), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = StatusMatrix::from_rows(&[
            vec![true, true, false],
            vec![true, false, false],
            vec![false, true, true],
            vec![true, true, true],
        ]);
        let cm = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        assert_eq!(cm.num_nodes(), 3);
        for i in 0..3u32 {
            assert_eq!(cm.get(i, i), 0.0);
            for j in 0..3u32 {
                assert_eq!(cm.get(i, j), cm.get(j, i));
            }
        }
        assert_eq!(cm.upper_triangle().len(), 3);
    }

    #[test]
    fn parallel_compute_is_bit_identical_across_thread_counts() {
        // 40 nodes, 96 processes of deterministic pseudo-random statuses.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let rows: Vec<Vec<bool>> = (0..96).map(|_| (0..40).map(|_| bit()).collect()).collect();
        let cols = StatusMatrix::from_rows(&rows).columns();
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let oracle = CorrelationMatrix::compute_reference(&cols, measure);
            for threads in [1usize, 4, 0] {
                let par = CorrelationMatrix::compute_parallel(&cols, measure, threads);
                for i in 0..40u32 {
                    for j in 0..40u32 {
                        assert_eq!(
                            oracle.get(i, j).to_bits(),
                            par.get(i, j).to_bits(),
                            "({i},{j}) differs from reference at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    /// A pseudo-random status matrix with planted constant columns: node 0
    /// never infected, node 1 always infected.
    fn matrix_with_degenerate_columns(beta: usize, n: usize) -> StatusMatrix {
        let mut state = 0xFEED_F00D_DEAD_BEEFu64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let rows: Vec<Vec<bool>> = (0..beta)
            .map(|_| {
                (0..n)
                    .map(|v| match v {
                        0 => false,
                        1 => true,
                        _ => bit(),
                    })
                    .collect()
            })
            .collect();
        StatusMatrix::from_rows(&rows)
    }

    #[test]
    fn multi_tile_matrix_matches_reference_bit_identically() {
        // β = 2051 (not a multiple of 64) gives pair_tile_size 48, so 100
        // nodes span multiple tiles and exercise diagonal + off-diagonal
        // blocks, tail words, and the degenerate-column short-circuit.
        let cols = matrix_with_degenerate_columns(2051, 100).columns();
        assert!(
            cols.pair_tile_size() < 100,
            "test must cover the multi-tile path (tile {})",
            cols.pair_tile_size()
        );
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let oracle = CorrelationMatrix::compute_reference(&cols, measure);
            for threads in [1usize, 3] {
                let tiled = CorrelationMatrix::compute_parallel(&cols, measure, threads);
                for i in 0..100u32 {
                    for j in 0..100u32 {
                        assert_eq!(
                            oracle.get(i, j).to_bits(),
                            tiled.get(i, j).to_bits(),
                            "({i},{j}) differs at {threads} threads, {measure:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_columns_carry_zero_information() {
        // Constant columns have P̂(X=a) = 0 for one status: every mi cell
        // involving them hits the 0·log0 = 0 convention, so both measures
        // are 0 against every other node (up to `1 − o/β` vs `(β−o)/β`
        // rounding noise) — through the short-circuit path, without
        // touching the column words.
        let cols = matrix_with_degenerate_columns(97, 8).columns();
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let m = CorrelationMatrix::compute(&cols, measure);
            for j in 0..8u32 {
                assert!(m.get(0, j).abs() < 1e-12, "never-infected node vs {j}");
                assert!(m.get(1, j).abs() < 1e-12, "always-infected node vs {j}");
            }
        }
        // The never/always pair in both orientations, straight from counts:
        // all four joints are degenerate.
        let pc = cols.pair_counts(0, 1);
        assert_eq!((pc.n11, pc.n10, pc.n00), (0, 0, 0));
        assert_eq!(pc.n01, 97);
        assert_eq!(imi(&pc), 0.0);
        assert_eq!(mi(&pc), 0.0);
    }

    /// Deterministic pseudo-random rows for stats tests.
    fn random_rows(seed: u64, beta: usize, n: usize) -> Vec<Vec<bool>> {
        let mut state = seed;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        (0..beta).map(|_| (0..n).map(|_| bit()).collect()).collect()
    }

    #[test]
    fn stats_capture_matches_plain_compute_bit_identically() {
        let cols = StatusMatrix::from_rows(&random_rows(0xA5A5, 130, 24)).columns();
        for measure in [CorrelationMeasure::Imi, CorrelationMeasure::Mi] {
            let plain = CorrelationMatrix::compute_parallel(&cols, measure, 3);
            let (with_stats, stats) = CorrelationMatrix::compute_observed_with_stats(
                &cols,
                measure,
                3,
                diffnet_observe::Recorder::disabled(),
            );
            for i in 0..24u32 {
                for j in 0..24u32 {
                    assert_eq!(plain.get(i, j).to_bits(), with_stats.get(i, j).to_bits());
                }
            }
            // The captured integers reproduce the kernel's counts exactly.
            for i in 0..24 {
                for j in (i + 1)..24 {
                    assert_eq!(
                        stats.pair_counts(i, j),
                        cols.pair_counts(i as u32, j as u32)
                    );
                }
            }
            // And the derived matrix is bit-identical to the computed one.
            let derived = stats.correlation(measure);
            for i in 0..24u32 {
                for j in 0..24u32 {
                    assert_eq!(plain.get(i, j).to_bits(), derived.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn appended_stats_equal_fresh_combined_stats() {
        // Degenerate columns in both halves stress the short-circuit paths.
        let mut base_rows = random_rows(0xBEEF, 97, 20);
        for row in &mut base_rows {
            row[3] = false; // never infected in the base
        }
        let appended_rows = random_rows(0xF00D, 33, 20);
        let mut combined_rows = base_rows.clone();
        combined_rows.extend(appended_rows.iter().cloned());

        let base = StatusMatrix::from_rows(&base_rows).columns();
        let appended = StatusMatrix::from_rows(&appended_rows).columns();
        let combined = StatusMatrix::from_rows(&combined_rows).columns();

        for threads in [1usize, 4] {
            let mut stats = PairStats::compute(&base, threads);
            stats.append(&appended, threads);
            let fresh = PairStats::compute(&combined, threads);
            assert_eq!(
                stats, fresh,
                "incremental stats differ at {threads} threads"
            );
            let inc = stats.correlation(CorrelationMeasure::Imi);
            let full = CorrelationMatrix::compute_parallel(&combined, CorrelationMeasure::Imi, 1);
            for i in 0..20u32 {
                for j in 0..20u32 {
                    assert_eq!(inc.get(i, j).to_bits(), full.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn stats_round_trip_through_parts() {
        let cols = StatusMatrix::from_rows(&random_rows(0xCAFE, 70, 12)).columns();
        let stats = PairStats::compute(&cols, 1);
        let rebuilt = PairStats::from_parts(
            stats.num_processes(),
            stats.ones().to_vec(),
            stats.n11().to_vec(),
        )
        .unwrap();
        assert_eq!(stats, rebuilt);
        assert!(PairStats::from_parts(70, vec![1, 2, 3], vec![0]).is_err());
        assert!(PairStats::from_parts(2, vec![5, 1, 1], vec![0, 0, 0]).is_err());
    }

    #[test]
    fn matrix_measures_differ_on_anticorrelated_pairs() {
        // Nodes 0 and 1 perfectly anti-correlated.
        let rows: Vec<Vec<bool>> = (0..40).map(|l| vec![l % 2 == 0, l % 2 == 1]).collect();
        let m = StatusMatrix::from_rows(&rows);
        let imi_m = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Imi);
        let mi_m = CorrelationMatrix::compute(&m.columns(), CorrelationMeasure::Mi);
        assert!(imi_m.get(0, 1) < -0.5, "IMI flags anti-correlation");
        assert!(mi_m.get(0, 1) > 0.5, "plain MI mistakes it for correlation");
    }
}
