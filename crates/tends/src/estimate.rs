//! Propagation-probability estimation for an inferred topology.
//!
//! The paper focuses on recovering the *edge set* and notes (§III) that
//! existing work quantifies per-edge propagation probabilities from
//! infection status results once the topology is known. This module
//! provides that companion step: a **noisy-OR** maximum-likelihood
//! estimator over final statuses.
//!
//! Model: given the final statuses `π` of `v`'s parents, the child is
//! infected with probability
//!
//! ```text
//! P(X_v = 1 | π) = 1 − (1 − q_v) · Π_{u ∈ π, on} (1 − p_{uv})
//! ```
//!
//! where `q_v` absorbs seeding and unmodelled influence. With the
//! reparameterization `r = −ln(1 − p)` the per-node log-likelihood is
//! concave in `(r_0, r)`, so projected gradient ascent finds the global
//! optimum.
//!
//! The fitted `p̂_{uv}` is a *status-level* effect size: it measures how
//! much a parent's final infection raises the child's, which under
//! multi-round diffusion is a (slightly biased) proxy for the per-contact
//! transmission probability — exactly what is identifiable without
//! timestamps.

use diffnet_graph::{DiGraph, NodeId};
use diffnet_simulate::{ComboSizeError, NodeColumns, StatusMatrix};

/// Optimizer settings for [`estimate_propagation_probabilities`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimateConfig {
    /// Gradient-ascent iterations per node.
    pub max_iters: usize,
    /// Step size.
    pub step_size: f64,
    /// Convergence tolerance on the max parameter update.
    pub tolerance: f64,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            max_iters: 300,
            step_size: 0.05,
            tolerance: 1e-6,
        }
    }
}

/// Per-edge probability estimates for `graph`, plus per-node base rates.
#[derive(Clone, Debug)]
pub struct PropagationEstimate {
    /// `p̂_{uv}` indexed by [`DiGraph::edge_index`].
    pub edge_probs: Vec<f64>,
    /// Per-node base infection rates `q̂_v` (seeding + unmodelled causes).
    pub base_rates: Vec<f64>,
}

impl PropagationEstimate {
    /// The estimate for edge `u -> v`, if it exists in `graph`.
    pub fn get(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> Option<f64> {
        graph.edge_index(u, v).map(|i| self.edge_probs[i])
    }
}

/// Fits noisy-OR propagation probabilities for every edge of `graph` from
/// the observed statuses.
///
/// # Errors
///
/// Returns [`ComboSizeError`] if some node's in-degree in `graph` exceeds
/// [`diffnet_simulate::MAX_TABULATED_PARENTS`] — the sufficient statistics
/// are per-parent-status-combination counts, `2^{in-degree}` of them. The
/// graph is caller input (often a file), so this is a recoverable error,
/// not a panic.
///
/// # Panics
///
/// Panics if the node counts of `graph` and `statuses` disagree.
pub fn estimate_propagation_probabilities(
    statuses: &StatusMatrix,
    graph: &DiGraph,
    config: &EstimateConfig,
) -> Result<PropagationEstimate, ComboSizeError> {
    assert_eq!(
        graph.node_count(),
        statuses.num_nodes(),
        "graph and status matrix must share the node set"
    );
    estimate_propagation_probabilities_from_columns(&statuses.columns(), graph, config)
}

/// [`estimate_propagation_probabilities`] starting from the column bitset
/// view — the entry point for out-of-core callers that streamed the
/// columns off disk and never held the row-major matrix. The row-major
/// variant delegates here, so both produce identical estimates.
///
/// # Errors / Panics
///
/// Same contract as [`estimate_propagation_probabilities`].
pub fn estimate_propagation_probabilities_from_columns(
    cols: &NodeColumns,
    graph: &DiGraph,
    config: &EstimateConfig,
) -> Result<PropagationEstimate, ComboSizeError> {
    assert_eq!(
        graph.node_count(),
        cols.num_nodes(),
        "graph and status matrix must share the node set"
    );
    let n = graph.node_count();
    let beta = cols.num_processes();
    let mut edge_probs = vec![0.0f64; graph.edge_count()];
    let mut base_rates = vec![0.0f64; n];

    for v in 0..n as NodeId {
        let parents: Vec<NodeId> = graph.in_neighbors(v).to_vec();
        // Sufficient statistics: counts per parent-status combination.
        let counts = cols.combo_counts(v, &parents)?;
        let (rates, base) = fit_noisy_or(&counts, parents.len(), beta, config);
        base_rates[v as usize] = 1.0 - (-base).exp();
        for (t, &p) in parents.iter().enumerate() {
            let idx = graph.edge_index(p, v).expect("parent edge exists");
            edge_probs[idx] = 1.0 - (-rates[t]).exp();
        }
    }
    Ok(PropagationEstimate {
        edge_probs,
        base_rates,
    })
}

/// Maximizes `Σ_j [ N_j1 · (−s_j) + N_j2 · ln(1 − e^{−s_j}) ]` over
/// non-negative rates, where `s_j = r0 + Σ_{t ∈ j} r_t`.
fn fit_noisy_or(
    counts: &[[u64; 2]],
    num_parents: usize,
    beta: usize,
    config: &EstimateConfig,
) -> (Vec<f64>, f64) {
    const FLOOR: f64 = 1e-9;
    if beta == 0 {
        return (vec![0.0; num_parents], 0.0);
    }
    let mut r = vec![0.1f64; num_parents];
    let mut r0 = 0.1f64;

    for _ in 0..config.max_iters {
        let mut grad = vec![0.0f64; num_parents];
        let mut grad0 = 0.0f64;
        for (j, &[n1, n2]) in counts.iter().enumerate() {
            if n1 + n2 == 0 {
                continue;
            }
            let mut s = r0;
            for (t, rt) in r.iter().enumerate() {
                if j & (1 << t) != 0 {
                    s += rt;
                }
            }
            let s = s.max(FLOOR);
            // d/ds of the combination's log-likelihood.
            let e = (-s).exp();
            let dll = n2 as f64 * e / (1.0 - e).max(FLOOR) - n1 as f64;
            grad0 += dll;
            for (t, g) in grad.iter_mut().enumerate() {
                if j & (1 << t) != 0 {
                    *g += dll;
                }
            }
        }
        let scale = config.step_size / beta as f64;
        let mut max_update = 0.0f64;
        let new_r0 = (r0 + scale * grad0).max(0.0);
        max_update = max_update.max((new_r0 - r0).abs());
        r0 = new_r0;
        for (rt, g) in r.iter_mut().zip(&grad) {
            let new = (*rt + scale * g).max(0.0);
            max_update = max_update.max((new - *rt).abs());
            *rt = new;
        }
        if max_update < config.tolerance {
            break;
        }
    }
    (r, r0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a status matrix from an exact noisy-OR generative model so
    /// the estimator's target is well-specified.
    fn noisy_or_matrix(
        p_edge: &[f64],
        q_base: f64,
        beta: usize,
        parent_rate: f64,
    ) -> (StatusMatrix, DiGraph) {
        let k = p_edge.len();
        let n = k + 1;
        let child = k as NodeId;
        let edges: Vec<(NodeId, NodeId)> = (0..k as NodeId).map(|u| (u, child)).collect();
        let graph = DiGraph::from_edges(n, &edges);

        // Deterministic xorshift for reproducibility without rand.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };

        let mut rows = Vec::with_capacity(beta);
        for _ in 0..beta {
            let mut row = vec![false; n];
            let mut survive = 1.0 - q_base;
            for (u, &p) in p_edge.iter().enumerate() {
                if uniform() < parent_rate {
                    row[u] = true;
                    survive *= 1.0 - p;
                }
            }
            row[k] = uniform() > survive;
            rows.push(row);
        }
        (StatusMatrix::from_rows(&rows), graph)
    }

    #[test]
    fn recovers_single_edge_probability() {
        let (m, g) = noisy_or_matrix(&[0.6], 0.1, 20_000, 0.5);
        let est = estimate_propagation_probabilities(&m, &g, &EstimateConfig::default())
            .expect("in-degrees fit");
        let p = est.get(&g, 0, 1).expect("edge exists");
        assert!((p - 0.6).abs() < 0.05, "estimated {p}, true 0.6");
        assert!(
            (est.base_rates[1] - 0.1).abs() < 0.05,
            "base {}",
            est.base_rates[1]
        );
    }

    #[test]
    fn recovers_two_parent_probabilities() {
        let (m, g) = noisy_or_matrix(&[0.3, 0.7], 0.05, 40_000, 0.5);
        let est = estimate_propagation_probabilities(&m, &g, &EstimateConfig::default())
            .expect("in-degrees fit");
        let p0 = est.get(&g, 0, 2).expect("edge");
        let p1 = est.get(&g, 1, 2).expect("edge");
        assert!((p0 - 0.3).abs() < 0.07, "p0 = {p0}");
        assert!((p1 - 0.7).abs() < 0.07, "p1 = {p1}");
        assert!(p1 > p0, "ordering must be preserved");
    }

    #[test]
    fn nodes_without_parents_get_base_rate_only() {
        let (m, _) = noisy_or_matrix(&[0.5], 0.2, 5_000, 0.5);
        // Same matrix, but an empty topology: everything must be absorbed
        // into base rates.
        let empty = DiGraph::empty(2);
        let est = estimate_propagation_probabilities(&m, &empty, &EstimateConfig::default())
            .expect("in-degrees fit");
        assert!(est.edge_probs.is_empty());
        // Node 0 is infected ~parent_rate of the time.
        assert!(
            (est.base_rates[0] - 0.5).abs() < 0.05,
            "{}",
            est.base_rates[0]
        );
    }

    #[test]
    fn zero_processes_yield_zero_estimates() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let m = StatusMatrix::new(0, 2);
        let est = estimate_propagation_probabilities(&m, &g, &EstimateConfig::default())
            .expect("in-degrees fit");
        assert_eq!(est.edge_probs, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "share the node set")]
    fn node_count_mismatch_panics() {
        let g = DiGraph::empty(3);
        let m = StatusMatrix::new(5, 4);
        let _ = estimate_propagation_probabilities(&m, &g, &EstimateConfig::default());
    }

    #[test]
    fn oversized_in_degree_is_a_typed_error() {
        // A hostile topology file can declare any in-degree; the
        // sufficient-statistics table is 2^{in-degree} rows, so 26 parents
        // must surface as an error, not an abort.
        let edges: Vec<(NodeId, NodeId)> = (0..26).map(|u| (u, 26)).collect();
        let g = DiGraph::from_edges(27, &edges);
        let m = StatusMatrix::new(10, 27);
        let err =
            estimate_propagation_probabilities(&m, &g, &EstimateConfig::default()).unwrap_err();
        assert_eq!(err.parents, 26);
        assert!(err.to_string().contains("26"));
    }

    #[test]
    fn columns_variant_matches_row_major_entry_point() {
        let (m, g) = noisy_or_matrix(&[0.4, 0.6], 0.1, 2_000, 0.5);
        let from_rows = estimate_propagation_probabilities(&m, &g, &EstimateConfig::default())
            .expect("in-degrees fit");
        let from_cols = estimate_propagation_probabilities_from_columns(
            &m.columns(),
            &g,
            &EstimateConfig::default(),
        )
        .expect("in-degrees fit");
        assert_eq!(from_rows.edge_probs, from_cols.edge_probs);
        assert_eq!(from_rows.base_rates, from_cols.base_rates);
    }

    #[test]
    fn end_to_end_on_simulated_diffusion() {
        // On real IC diffusion the noisy-OR fit is a biased proxy, but the
        // relative ordering of strong vs weak edges must survive.
        use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let truth = DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(7);
        let probs = EdgeProbs::from_vec(&truth, vec![0.8, 0.2, 0.5]);
        let obs = IndependentCascade::new(&truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.25,
                num_processes: 4000,
            },
            &mut rng,
        );
        let est =
            estimate_propagation_probabilities(&obs.statuses, &truth, &EstimateConfig::default())
                .expect("in-degrees fit");
        let strong = est.get(&truth, 0, 2).expect("edge");
        let weak = est.get(&truth, 1, 2).expect("edge");
        assert!(
            strong > weak + 0.1,
            "strong edge {strong} should clearly exceed weak edge {weak}"
        );
    }
}
