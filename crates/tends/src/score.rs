//! The TENDS scoring criterion (paper §IV-A).
//!
//! For node `v_i` with parent set `F_i`, the observed counts `N_ijk` (how
//! often parent-status combination `j` co-occurs with child status `s_k`)
//! determine:
//!
//! * the log-likelihood `log₂ L(v_i, F_i) = Σ_j Σ_k N_ijk log₂(N_ijk/N_ij)`
//!   (Eq. 3) — which, by Theorem 1, can only grow as parents are added;
//! * the penalty `½ Σ_j log₂(N_ij + 1)` — which grows with the number of
//!   *instantiated* combinations and bounds the statistical error;
//! * the local score `g(v_i, F_i)` = likelihood − penalty (Eq. 13), whose
//!   maximizer is a weakly consistent estimator of the true parent set
//!   (Corollary 1, via Nishii 1988);
//! * the Theorem-2 upper bound `|F_i| ≤ log₂(φ_{F_i} + δ_i)` on how many
//!   parents are worth considering at all.
//!
//! All logarithms are base 2, following the paper.

/// Counts `N_ijk` for one parent-status combination `j`: `[N_ij1, N_ij2]`
/// with the paper's convention `s₁ = 0` (uninfected), `s₂ = 1` (infected).
pub type ComboCounts = [u64; 2];

/// `x · log₂(x / total)` with the standard convention `0 · log 0 = 0`.
#[inline]
fn x_log2_ratio(x: u64, total: u64) -> f64 {
    if x == 0 {
        0.0
    } else {
        debug_assert!(total >= x);
        x as f64 * (x as f64 / total as f64).log2()
    }
}

/// `log₂ L(v_i, F_i)` (Eq. 3): the maximized log-likelihood of the child's
/// statuses given its parents' status combinations.
///
/// Always `≤ 0`; equals 0 iff the child's status is a deterministic
/// function of the parents' combination wherever instantiated.
pub fn log_likelihood(counts: &[ComboCounts]) -> f64 {
    counts
        .iter()
        .map(|&[n1, n2]| {
            let nij = n1 + n2;
            x_log2_ratio(n1, nij) + x_log2_ratio(n2, nij)
        })
        .sum()
}

/// The statistical-error penalty `½ Σ_j log₂(N_ij + 1)` of Eq. (12).
pub fn penalty(counts: &[ComboCounts]) -> f64 {
    0.5 * counts
        .iter()
        .map(|&[n1, n2]| ((n1 + n2 + 1) as f64).log2())
        .sum::<f64>()
}

/// The local score `g(v_i, F_i)` (Eq. 13).
pub fn local_score(counts: &[ComboCounts]) -> f64 {
    log_likelihood(counts) - penalty(counts)
}

/// `φ_F`: the number of parent-status combinations with no instance in `S`.
pub fn phi(counts: &[ComboCounts]) -> usize {
    counts.iter().filter(|&&[n1, n2]| n1 + n2 == 0).count()
}

/// `δ_i = 2N₁log₂(β/N₁) + 2N₂log₂(β/N₂) + log₂(β+1)` (Theorem 2, Eq. 17),
/// where `N₁`/`N₂` count the processes in which `v_i` is uninfected /
/// infected (`N₁ + N₂ = β`). Terms with `N = 0` vanish (`0·log(β/0) := 0`,
/// consistent with the entropy limit).
///
/// # Panics
///
/// Panics if `n1 + n2 != beta`.
pub fn delta(beta: u64, n1: u64, n2: u64) -> f64 {
    assert_eq!(n1 + n2, beta, "N₁ + N₂ must equal β");
    let term = |n: u64| {
        if n == 0 {
            0.0
        } else {
            2.0 * n as f64 * (beta as f64 / n as f64).log2()
        }
    };
    term(n1) + term(n2) + ((beta + 1) as f64).log2()
}

/// The Theorem-2 bound: the largest admissible parent-set size
/// `log₂(φ + δ)` for a node with non-existent-combination count `φ` and
/// slack `δ` ([`delta`]).
pub fn parent_bound(phi: usize, delta: f64) -> f64 {
    (phi as f64 + delta).max(1.0).log2()
}

/// Whether a parent set of size `size` with non-existent-combination count
/// `phi_f` satisfies Theorem 2's `|F| ≤ log₂(φ_F + δ)`.
pub fn within_bound(size: usize, phi_f: usize, delta: f64) -> bool {
    size as f64 <= parent_bound(phi_f, delta)
}

/// The decomposed global score `g(T) = Σ_i g(v_i, F_i)` (Eq. 12) given each
/// node's combination counts.
pub fn global_score<'a, I>(per_node_counts: I) -> f64
where
    I: IntoIterator<Item = &'a Vec<ComboCounts>>,
{
    per_node_counts.into_iter().map(|c| local_score(c)).sum()
}

/// What the score cache did during one search (or a sum over many).
///
/// Kept separate from `SearchStats` deliberately: the reference search has
/// no cache, and the equivalence oracle asserts the cached path's
/// `SearchStats` are *identical* to the reference's — evaluations still
/// count on a hit, only the workspace refinement is skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScoreCacheStats {
    /// Evaluations answered from the cache (no workspace refinement).
    pub hits: u64,
    /// Evaluations that refined the workspace and populated the cache.
    pub misses: u64,
}

impl ScoreCacheStats {
    /// Field-wise sum with another stats record.
    pub fn merge(&mut self, other: &ScoreCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A memoized evaluation of `g(v_i, F)`: everything the search needs to
/// reuse a subset's score without recounting — the local score itself and
/// the `φ_F` that drives the Theorem-2 bound check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedScore {
    /// `g(v_i, F)` ([`local_score`]).
    pub score: f64,
    /// `φ_F` ([`phi`]), for [`within_bound`] checks without the counts.
    pub phi: usize,
}

/// Cross-round memo of `g(v_i, F ∪ W)` keyed on the candidate-subset
/// bitmask.
///
/// Every set the greedy search scores is a union of candidate combinations,
/// i.e. a subset of the node's (post-pruning) candidate list — and that
/// list is at most a few dozen nodes, so a subset is one `u64` with bit `t`
/// standing for candidate `t`. Greedy rounds re-probe subsets already
/// scored during enumeration (round one re-scores every combination
/// verbatim), and the exhaustive strategy re-visits every enumerated
/// combination; both hit this cache instead of re-refining the workspace
/// partition.
///
/// A cached score was computed from the exact counts table (same sorted
/// parent order, same summation order) a fresh evaluation would build, so
/// reuse is bit-identical. The cache is per-child: callers must
/// [`reset`](Self::reset) it between nodes.
#[derive(Clone, Debug, Default)]
pub struct ScoreCache {
    map: std::collections::HashMap<u64, CachedScore>,
    stats: ScoreCacheStats,
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScoreCache::default()
    }

    /// Clears cached entries and counters for a new child node, retaining
    /// the map's capacity.
    pub fn reset(&mut self) {
        self.map.clear();
        self.stats = ScoreCacheStats::default();
    }

    /// Looks up a subset's memoized evaluation, counting a hit on success.
    pub fn get(&mut self, key: u64) -> Option<CachedScore> {
        let found = self.map.get(&key).copied();
        if found.is_some() {
            self.stats.hits += 1;
        }
        found
    }

    /// Memoizes a freshly computed evaluation, counting a miss.
    pub fn insert(&mut self, key: u64, value: CachedScore) {
        self.stats.misses += 1;
        self.map.insert(key, value);
    }

    /// Hit/miss counters since the last [`reset`](Self::reset).
    pub fn stats(&self) -> ScoreCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_likelihood_of_deterministic_child_is_zero() {
        // Child always infected when parent infected, never otherwise.
        let counts = vec![[10, 0], [0, 10]];
        assert_eq!(log_likelihood(&counts), 0.0);
    }

    #[test]
    fn log_likelihood_of_fair_coin() {
        // One combination, child 50/50 over 20 processes: −20 bits.
        let counts = vec![[10, 10]];
        assert!((log_likelihood(&counts) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn log_likelihood_never_positive() {
        for counts in [
            vec![[3, 5]],
            vec![[0, 0], [7, 2]],
            vec![[1, 1], [2, 2], [3, 3], [4, 4]],
        ] {
            assert!(log_likelihood(&counts) <= 1e-12, "{counts:?}");
        }
    }

    #[test]
    fn empty_combinations_contribute_nothing() {
        let with_empty = vec![[5, 5], [0, 0]];
        let without = vec![[5, 5]];
        assert_eq!(log_likelihood(&with_empty), log_likelihood(&without));
        assert_eq!(penalty(&with_empty), penalty(&without));
    }

    #[test]
    fn penalty_matches_formula() {
        let counts = vec![[3, 4], [0, 1]];
        let expect = 0.5 * ((8.0f64).log2() + (2.0f64).log2());
        assert!((penalty(&counts) - expect).abs() < 1e-12);
    }

    #[test]
    fn local_score_is_likelihood_minus_penalty() {
        let counts = vec![[6, 2], [1, 7]];
        assert!(
            (local_score(&counts) - (log_likelihood(&counts) - penalty(&counts))).abs() < 1e-12
        );
    }

    #[test]
    fn phi_counts_empty_combinations() {
        assert_eq!(phi(&[[1, 0], [0, 0], [0, 2], [0, 0]]), 2);
        assert_eq!(phi(&[]), 0);
    }

    #[test]
    fn delta_balanced_case() {
        // β = 100, N₁ = N₂ = 50: δ = 2·50·1 + 2·50·1 + log₂(101).
        let d = delta(100, 50, 50);
        let expect = 200.0 + 101f64.log2();
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn delta_degenerate_node_is_small() {
        // A node that is never infected carries almost no information:
        // only the log₂(β+1) term survives.
        let d = delta(100, 100, 0);
        assert!((d - 101f64.log2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must equal β")]
    fn delta_rejects_inconsistent_counts() {
        delta(10, 3, 4);
    }

    #[test]
    fn parent_bound_matches_paper_scale() {
        // β = 150, balanced statuses: δ ≈ 300 + log₂ 151 ⇒ bound ≈ 8.3.
        let d = delta(150, 75, 75);
        let b = parent_bound(0, d);
        assert!(b > 8.0 && b < 8.5, "bound {b}");
        assert!(within_bound(8, 0, d));
        assert!(!within_bound(9, 0, d));
    }

    #[test]
    fn parent_bound_never_negative_infinity() {
        assert!(parent_bound(0, 0.0) >= 0.0);
    }

    #[test]
    fn global_score_decomposes() {
        let a = vec![[5u64, 5u64]];
        let b = vec![[2u64, 8u64], [4u64, 1u64]];
        let total = global_score([&a, &b]);
        assert!((total - (local_score(&a) + local_score(&b))).abs() < 1e-12);
    }

    // Lemma 1: (b/a)^b ≤ (b1/a1)^{b1} (b2/a2)^{b2} in log space, i.e.
    // merging two combinations never increases the log-likelihood.
    #[test]
    fn lemma1_merging_combinations_never_helps() {
        let cases = [
            ((3u64, 5u64), (2u64, 9u64)),
            ((0, 4), (6, 6)),
            ((1, 1), (1, 1)),
            ((10, 12), (0, 3)),
        ];
        for ((b1, extra1), (b2, extra2)) in cases {
            let (a1, a2) = (b1 + extra1, b2 + extra2);
            let split = x_log2_ratio(b1, a1) + x_log2_ratio(b2, a2);
            let merged = x_log2_ratio(b1 + b2, a1 + a2);
            assert!(
                merged <= split + 1e-12,
                "lemma 1 violated for ({b1},{a1}),({b2},{a2})"
            );
        }
    }

    // Theorem 1: refining a parent set (splitting every combination by a
    // new parent's status) never decreases the likelihood.
    #[test]
    fn theorem1_adding_a_parent_never_decreases_likelihood() {
        // Coarse counts and an arbitrary refinement of each combination.
        let coarse = vec![[6u64, 4u64], [3, 7]];
        let refined = vec![[2u64, 1u64], [4, 3], [1, 5], [2, 2]];
        // refined[2j] + refined[2j+1] == coarse[j]
        for j in 0..coarse.len() {
            for k in 0..2 {
                assert_eq!(refined[2 * j][k] + refined[2 * j + 1][k], coarse[j][k]);
            }
        }
        assert!(log_likelihood(&refined) >= log_likelihood(&coarse) - 1e-12);
    }
}
