//! The modified 2-means threshold finder (paper §IV-B, Algorithm 1 line 5).
//!
//! TENDS partitions all *non-negative* pairwise infection-MI values into two
//! clusters with K-means, `K = 2`, keeping one centroid pinned at 0 through
//! every iteration. The pinned cluster collects the compact mass of
//! near-zero values produced by unrelated node pairs; the threshold `τ` is
//! the largest value assigned to it, so every candidate parent must beat the
//! "noise" cluster.

/// Outcome of the pinned 2-means clustering.
#[derive(Clone, Debug, PartialEq)]
pub struct PinnedKmeans {
    /// The threshold `τ`: the largest value in the pinned (near-zero)
    /// cluster; 0 if that cluster is empty.
    pub tau: f64,
    /// Final position of the free centroid.
    pub free_centroid: f64,
    /// Number of values assigned to the pinned cluster.
    pub pinned_count: usize,
    /// Number of values assigned to the free cluster.
    pub free_count: usize,
    /// Iterations until convergence.
    pub iterations: usize,
}

/// Runs 2-means over the finite non-negative entries of `values` with one
/// centroid pinned at 0, and returns the threshold `τ`.
///
/// Negative entries are discarded first (the paper removes negative
/// infection-MI values before clustering). Non-finite entries (NaN, ±∞)
/// are discarded with them: a NaN has no cluster distance and an infinite
/// value would drag the free centroid to ∞, collapsing every finite value
/// into the pinned cluster — treating both as "no usable correlation" is
/// the same conservative policy as dropping negatives, and keeps this
/// function total over hostile input. Degenerate inputs have a
/// well-defined `τ`:
///
/// * **empty input** (or every entry negative): `τ = 0`, both clusters
///   empty, zero iterations;
/// * **all zeros** (no strictly positive value): `τ = 0`, every value in
///   the pinned cluster, the free cluster empty;
/// * **a single positive value**: it seeds — and stays in — the free
///   cluster, so the pinned cluster is empty and `τ = 0`.
///
/// In every case `τ = 0` keeps *all* positive correlations above threshold,
/// which is the conservative choice when there is no noise mass to fit.
pub fn pinned_two_means(values: &[f64]) -> PinnedKmeans {
    const MAX_ITERS: usize = 100;

    let mut vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|&v| v.is_finite() && v >= 0.0)
        .collect();
    vals.sort_unstable_by(f64::total_cmp);

    let positive_max = vals.last().copied().unwrap_or(0.0);
    if positive_max <= 0.0 {
        return PinnedKmeans {
            tau: 0.0,
            free_centroid: 0.0,
            pinned_count: vals.len(),
            free_count: 0,
            iterations: 0,
        };
    }

    // Suffix sums make each free-cluster mean an O(1) lookup instead of
    // an O(cluster) re-summation per iteration: `suffix[i]` is the sum of
    // `vals[i..]`, accumulated right to left once after the sort.
    let mut suffix = vec![0.0f64; vals.len() + 1];
    for i in (0..vals.len()).rev() {
        suffix[i] = vals[i] + suffix[i + 1];
    }

    // Initialize the free centroid at the maximum so the pinned cluster
    // starts as inclusive as possible and shrinks from there.
    let mut c = positive_max;
    let mut boundary_idx = 0usize; // first index assigned to the free cluster
    let mut iterations = 0usize;

    for it in 1..=MAX_ITERS {
        iterations = it;
        // Assignment: v joins the free cluster iff it is strictly closer to
        // c than to 0, i.e. v > c/2. With sorted values this is a partition
        // point.
        let half = c / 2.0;
        let new_boundary = vals.partition_point(|&v| v <= half);
        // Update: the free centroid moves to the mean of its members; if it
        // would be empty, keep it at the maximum (it then owns at least the
        // max element next round).
        let new_c = if new_boundary < vals.len() {
            suffix[new_boundary] / (vals.len() - new_boundary) as f64
        } else {
            positive_max
        };
        let converged = new_boundary == boundary_idx && (new_c - c).abs() < 1e-12;
        boundary_idx = new_boundary;
        c = new_c;
        if converged && it > 1 {
            break;
        }
    }

    let tau = if boundary_idx == 0 {
        0.0
    } else {
        vals[boundary_idx - 1]
    };
    PinnedKmeans {
        tau,
        free_centroid: c,
        pinned_count: boundary_idx,
        free_count: vals.len() - boundary_idx,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_well_separated_groups() {
        // Noise near 0, signal near 0.8.
        let mut vals = vec![0.001, 0.002, 0.0005, 0.003, 0.0];
        vals.extend([0.75, 0.8, 0.85, 0.78]);
        let r = pinned_two_means(&vals);
        assert!(r.tau >= 0.003 && r.tau < 0.75, "τ = {}", r.tau);
        assert_eq!(r.pinned_count, 5);
        assert_eq!(r.free_count, 4);
        assert!((r.free_centroid - 0.795).abs() < 0.01);
    }

    #[test]
    fn negatives_are_discarded() {
        let vals = vec![-0.5, -0.1, 0.001, 0.9];
        let r = pinned_two_means(&vals);
        assert_eq!(r.pinned_count + r.free_count, 2);
        assert!(r.tau < 0.9);
    }

    #[test]
    fn empty_input() {
        let r = pinned_two_means(&[]);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.free_count, 0);
    }

    #[test]
    fn all_zeros() {
        let r = pinned_two_means(&[0.0, 0.0, 0.0]);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.pinned_count, 3);
        assert_eq!(r.free_count, 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn all_negatives_behave_like_empty_input() {
        let r = pinned_two_means(&[-0.4, -0.1, -2.0]);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.pinned_count, 0);
        assert_eq!(r.free_count, 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn single_positive_value_goes_to_free_cluster() {
        let r = pinned_two_means(&[0.7]);
        assert_eq!(r.tau, 0.0, "nothing left in the pinned cluster");
        assert_eq!(r.free_count, 1);
        assert!((r.free_centroid - 0.7).abs() < 1e-12);
    }

    #[test]
    fn uniform_positive_values_split_at_half_centroid() {
        // Values spread uniformly: the pinned cluster takes the lower part.
        let vals: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let r = pinned_two_means(&vals);
        assert!(r.pinned_count > 10 && r.free_count > 10);
        assert!(r.tau > 0.0 && r.tau < 1.0);
        // τ must separate the clusters exactly.
        assert!(vals.iter().filter(|&&v| v <= r.tau).count() == r.pinned_count);
    }

    #[test]
    fn threshold_excludes_signal_in_realistic_mix() {
        // 95% near-zero noise plus 5% strong signal, like real IMI matrices.
        let mut vals: Vec<f64> = (0..950).map(|i| (i % 13) as f64 * 1e-4).collect();
        vals.extend((0..50).map(|i| 0.3 + (i % 7) as f64 * 0.01));
        let r = pinned_two_means(&vals);
        assert!(
            r.tau < 0.3,
            "signal must survive the threshold, τ = {}",
            r.tau
        );
        assert!(r.free_count >= 50);
    }

    #[test]
    fn non_finite_values_are_discarded_not_fatal() {
        // NaN used to panic the sort comparator; +∞ survived the `>= 0`
        // filter and poisoned the free-centroid mean. Both must now act
        // like discarded negatives.
        let with_nan = vec![f64::NAN, 0.001, 0.002, 0.8, 0.85];
        let r = pinned_two_means(&with_nan);
        assert_eq!(r.pinned_count + r.free_count, 4);
        assert!(r.tau >= 0.002 && r.tau < 0.8, "τ = {}", r.tau);

        let with_inf = vec![f64::INFINITY, 0.001, 0.002, 0.8, 0.85];
        let r = pinned_two_means(&with_inf);
        assert!(r.free_centroid.is_finite(), "centroid {}", r.free_centroid);
        assert!(r.tau >= 0.002 && r.tau < 0.8, "τ = {}", r.tau);

        let clean = pinned_two_means(&[0.001, 0.002, 0.8, 0.85]);
        let junk = pinned_two_means(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.001,
            0.002,
            0.8,
            0.85,
        ]);
        assert_eq!(junk, clean, "junk values must not shift the result");
    }

    #[test]
    fn all_non_finite_behaves_like_empty_input() {
        let r = pinned_two_means(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.pinned_count, 0);
        assert_eq!(r.free_count, 0);
    }

    #[test]
    fn converges_quickly() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let r = pinned_two_means(&vals);
        assert!(r.iterations < 50, "iterations {}", r.iterations);
    }
}
