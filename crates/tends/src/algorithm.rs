//! The TENDS algorithm (paper Algorithm 1): end-to-end reconstruction of a
//! diffusion network topology from a status matrix.

use crate::checkpoint::{self, Checkpoint, CheckpointEntry, CheckpointError};
use crate::imi::{CorrelationMatrix, CorrelationMeasure, PairStats};
use crate::kmeans::{pinned_two_means, PinnedKmeans};
use crate::parallel;
use crate::score::ScoreCacheStats;
use crate::search::{
    candidate_parents, find_parents_reference, find_parents_with, JointTable, NodeSearchResult,
    SearchError, SearchParams, SearchScratch, SearchStats,
};
use crate::stream::{self, Shard};
use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_observe::{FaultPlan, Recorder, SpanId};
use diffnet_simulate::{NodeColumns, StatusMatrix, WorkspaceStats};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Mutex};

/// How the pruning threshold `τ` is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ThresholdMode {
    /// Find `τ` with the pinned 2-means over the pairwise correlation
    /// values (Algorithm 1 line 5). Default.
    #[default]
    Auto,
    /// Use a fixed threshold (for sensitivity studies).
    Fixed(f64),
    /// Find `τ` automatically, then scale it by the given factor — the
    /// paper's Fig. 10–11 sweep varies the threshold from `0.4τ` to `2τ`.
    ScaledAuto(f64),
}

/// How inferred edge directions are post-processed.
///
/// Final infection statuses carry no directional information *within* a
/// pair — the likelihood gain of `u` as a parent of `v` equals that of `v`
/// as a parent of `u` — so on networks with one-directional edges TENDS
/// tends to propose both directions. These policies let a user encode
/// domain knowledge about reciprocity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DirectionPolicy {
    /// Keep the per-node selections as-is (the paper's behaviour). Default.
    #[default]
    AsIs,
    /// Whenever `u -> v` is inferred, also add `v -> u`: appropriate when
    /// influence is known to be mutual (coauthorship, physical contact).
    Symmetrize,
    /// Keep only pairs inferred in *both* directions: raises precision on
    /// reciprocal networks by demanding agreement between the two
    /// independent per-node searches.
    MutualOnly,
}

/// Full configuration of a TENDS run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct TendsConfig {
    /// Pairwise correlation measure for pruning (IMI, or plain MI for the
    /// paper's ablation).
    pub correlation: CorrelationMeasure,
    /// Threshold selection mode.
    pub threshold: ThresholdMode,
    /// Parent-search parameters.
    pub search: SearchParams,
    /// Edge-direction post-processing.
    pub direction: DirectionPolicy,
    /// Worker threads for the per-node parent searches (each node's search
    /// is independent). `0` uses all available cores; `1` (default) runs
    /// single-threaded, which keeps timing comparisons with the
    /// single-threaded baselines honest.
    pub threads: usize,
    /// Peak-memory budget in bytes for the out-of-core streamed IMI path.
    /// Setting this (or [`shard`](TendsConfig::shard)) switches
    /// reconstruction from the dense `n × n` correlation matrix to the
    /// streamed sparse-candidate pipeline (see [`crate::stream`]): τ comes
    /// from a budget-sized systematic pair sample and candidates from
    /// bounded per-node accumulators. `None` (default) keeps the dense
    /// path — the bit-identity oracle. The budget also sizes the τ
    /// sample, so runs must share a budget to share τ bit-for-bit.
    pub memory_budget: Option<u64>,
    /// Restricts the streamed path to one contiguous node range: only the
    /// shard's nodes get candidate lists, parent searches, and edges, so
    /// one logical reconstruction can be split across processes and
    /// merged by edge union. Implies the streamed path. The result's
    /// `node_results` are indexed by `node − shard.start`; the graph
    /// keeps global node ids. Incompatible with
    /// [`DirectionPolicy::MutualOnly`], which needs every node's parent
    /// set (callers must reject that combination; the library asserts).
    pub shard: Option<Shard>,
}

/// Result of a TENDS reconstruction.
#[derive(Clone, Debug)]
pub struct TendsResult {
    /// The inferred diffusion network topology.
    pub graph: DiGraph,
    /// The pruning threshold that was applied.
    pub tau: f64,
    /// Details of the threshold clustering (the *unscaled* `τ` lives in
    /// here when [`ThresholdMode::ScaledAuto`] is used).
    pub kmeans: PinnedKmeans,
    /// Per-node search outcomes, indexed by node id — or, on a sharded
    /// streamed run, by `node − shard.start` (only the shard's nodes are
    /// searched).
    pub node_results: Vec<NodeSearchResult>,
    /// The global score `g(T)` of the inferred topology (Eq. 12): the sum
    /// of the per-node local scores.
    pub global_score: f64,
}

/// Why one node's parent search failed.
#[derive(Debug)]
pub enum NodeError {
    /// The search configuration exceeded the counting kernels' limits.
    Search(SearchError),
    /// An I/O failure reached the search (in practice: injected by a
    /// [`FaultPlan`] to exercise degradation paths).
    Io(std::io::Error),
    /// The run was cancelled through [`RobustOptions::cancel`] before this
    /// node was searched; completed nodes stay checkpointed, so a resumed
    /// run picks up exactly here.
    Cancelled,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Search(e) => e.fmt(f),
            NodeError::Io(e) => write!(f, "I/O error during node search: {e}"),
            NodeError::Cancelled => write!(f, "node search cancelled before it started"),
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Search(e) => Some(e),
            NodeError::Io(e) => Some(e),
            NodeError::Cancelled => None,
        }
    }
}

/// A reconstruction that survived per-node failures instead of aborting:
/// failed nodes simply contribute no parent edges, and the caller decides
/// whether a partial topology is acceptable (the CLI signals it with a
/// dedicated exit code).
#[derive(Debug)]
pub struct PartialReconstruction {
    /// The reconstruction over the nodes that succeeded; failed nodes
    /// have an empty parent set and a zero local score.
    pub result: TendsResult,
    /// Nodes whose parent search failed, in ascending id order.
    pub failed_nodes: Vec<NodeId>,
    /// The failures, parallel to `failed_nodes`.
    pub errors: Vec<(NodeId, NodeError)>,
    /// Nodes restored from a checkpoint instead of searched. On the
    /// incremental append path this counts nodes whose parent sets were
    /// replayed from persisted joint tables rather than re-searched.
    pub resumed_nodes: usize,
    /// Checkpoint writes performed during the run (delta batches plus the
    /// final compaction).
    pub checkpoint_flushes: u64,
    /// Append-only delta records written to the checkpoint before the
    /// final compaction rewrite.
    pub delta_records: u64,
}

impl PartialReconstruction {
    /// True when every node's search succeeded.
    pub fn is_complete(&self) -> bool {
        self.failed_nodes.is_empty()
    }

    /// The inferred (possibly partial) topology.
    pub fn graph(&self) -> &DiGraph {
        &self.result.graph
    }
}

/// Robustness options for [`Tends::reconstruct_robust`]: checkpointing,
/// resume, and fault injection. [`Default`] disables all three.
#[derive(Debug)]
pub struct RobustOptions<'a> {
    /// Checkpoint file to write progress to; `None` disables
    /// checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Load `checkpoint` first and skip the nodes it already contains. A
    /// missing file is treated as an empty checkpoint so restart loops
    /// can pass `resume` unconditionally.
    pub resume: bool,
    /// Flush the checkpoint after this many newly completed nodes
    /// (clamped to ≥ 1).
    pub checkpoint_interval: usize,
    /// Fault-injection plan consulted at the `node_search` and
    /// `checkpoint_flush` sites.
    pub fault: &'a FaultPlan,
    /// Cooperative cancellation flag, polled before each node's search.
    /// Once set, remaining nodes fail with [`NodeError::Cancelled`] while
    /// every already-completed node still reaches the checkpoint's final
    /// flush — this is how a serving daemon checkpoints in-flight jobs on
    /// graceful shutdown. `None` (default) never cancels.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
    /// Sufficient-statistics revision of the input matrix: 0 for the
    /// original submission, bumped once per applied cascade-append batch.
    /// Folded into the checkpoint fingerprint so a resume against a stale
    /// pre-append checkpoint fails with a typed mismatch instead of
    /// silently splicing parents estimated from fewer cascades.
    pub revision: u64,
}

impl Default for RobustOptions<'_> {
    fn default() -> Self {
        RobustOptions {
            checkpoint: None,
            resume: false,
            checkpoint_interval: 8,
            fault: FaultPlan::none(),
            cancel: None,
            revision: 0,
        }
    }
}

impl TendsResult {
    /// Total number of local-score evaluations across all nodes (a proxy
    /// for search effort, used by the pruning experiments).
    pub fn total_evaluations(&self) -> usize {
        self.node_results.iter().map(|r| r.stats.evaluations).sum()
    }

    /// Mean number of surviving candidate parents per node.
    pub fn mean_candidates(&self) -> f64 {
        if self.node_results.is_empty() {
            return 0.0;
        }
        self.node_results
            .iter()
            .map(|r| r.candidates.len())
            .sum::<usize>() as f64
            / self.node_results.len() as f64
    }
}

/// The TENDS estimator.
///
/// ```
/// use diffnet_graph::DiGraph;
/// use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
/// use diffnet_tends::Tends;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Hidden ground truth: a directed chain.
/// let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let probs = EdgeProbs::constant(&truth, 0.5);
/// let obs = IndependentCascade::new(&truth, &probs)
///     .observe(IcConfig { initial_ratio: 0.2, num_processes: 400 }, &mut rng);
///
/// let result = Tends::new().reconstruct(&obs.statuses).expect("default search fits");
/// assert_eq!(result.graph.node_count(), 6);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tends {
    config: TendsConfig,
}

impl Tends {
    /// TENDS with the paper's default configuration.
    pub fn new() -> Self {
        Tends::default()
    }

    /// TENDS with an explicit configuration.
    pub fn with_config(config: TendsConfig) -> Self {
        Tends { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TendsConfig {
        &self.config
    }

    /// Reconstructs the diffusion network topology from final infection
    /// statuses (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] when the search configuration asks the
    /// counting kernels to tabulate a parent set beyond their limit —
    /// unreachable with default parameters, reachable with hostile ones
    /// (see [`crate::search::find_parents`]).
    pub fn reconstruct(&self, statuses: &StatusMatrix) -> Result<TendsResult, SearchError> {
        self.reconstruct_observed(statuses, Recorder::disabled())
    }

    /// [`reconstruct`](Self::reconstruct) with instrumentation: each
    /// pipeline phase is timed on `rec`, and the load-bearing internals
    /// (pairs above `τ`, candidate-set sizes, Theorem-2 rejections,
    /// combinations scored, workspace refinements, pool utilization) are
    /// ingested at phase boundaries — the hot loops only bump plain
    /// integers. Passing [`Recorder::disabled`] makes every recorder call
    /// a branch on a constant, so `reconstruct` simply delegates here.
    ///
    /// The recorder is a parameter rather than a `TendsConfig` field
    /// because the config is `Copy` (it is embedded in sweep/ablation
    /// tables all over the workspace) and a collector handle is not.
    pub fn reconstruct_observed(
        &self,
        statuses: &StatusMatrix,
        rec: &Recorder,
    ) -> Result<TendsResult, SearchError> {
        let partial = self
            .reconstruct_robust(statuses, rec, &RobustOptions::default())
            .expect("checkpointing disabled: checkpoint errors are impossible");
        match partial.errors.into_iter().next() {
            None => Ok(partial.result),
            Some((_, NodeError::Search(e))) => Err(e),
            Some((_, NodeError::Io(e))) => {
                unreachable!("no fault plan installed, got injected I/O error: {e}")
            }
            Some((_, NodeError::Cancelled)) => {
                unreachable!("no cancellation flag installed, got a cancelled node")
            }
        }
    }

    /// [`reconstruct_observed`](Self::reconstruct_observed) with the full
    /// robustness layer: optional periodic checkpointing of completed
    /// per-node searches, resume from a prior checkpoint, fault
    /// injection, and graceful degradation — per-node failures are
    /// collected into the returned [`PartialReconstruction`] instead of
    /// aborting the run.
    ///
    /// Resume is *bit-identical*: because each node's result is a pure
    /// function of its id (and scores/counters are checkpointed
    /// bit-exactly), a run interrupted at any point and resumed at any
    /// thread count produces the same graph and the same deterministic
    /// report sections as an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Only checkpoint problems are fatal: an unreadable, corrupt, or
    /// mismatched (different inputs/config) checkpoint file, or a failed
    /// checkpoint write.
    pub fn reconstruct_robust(
        &self,
        statuses: &StatusMatrix,
        rec: &Recorder,
        options: &RobustOptions<'_>,
    ) -> Result<PartialReconstruction, CheckpointError> {
        let cols = {
            let _p = rec.phase("status_columns");
            statuses.columns()
        };
        self.reconstruct_robust_from_columns(&cols, rec, options)
    }

    /// Incremental re-estimation after a cascade append: folds the
    /// appended processes into the checkpointed sufficient statistics,
    /// recomputes τ and every candidate set, and re-runs the parent search
    /// only for *dirty* nodes — those whose ranked candidate list changed
    /// or whose joint table was not persisted. Clean nodes are *replayed*:
    /// the persisted joint contingency table plus a delta table counted
    /// from the appended columns alone reproduce the combined-matrix
    /// search bit-for-bit (see [`JointTable`]), so edges, scores, and τ
    /// are byte-identical to [`reconstruct_robust`](Self::reconstruct_robust)
    /// over the combined matrix at every thread count and SIMD tier —
    /// while replay cost is independent of how many processes history
    /// already holds.
    ///
    /// `combined` must contain exactly the base run's processes plus the
    /// `appended` processes (row order is irrelevant: every statistic is a
    /// function of the row multiset). `options.revision` must be the
    /// *bumped* revision (checkpoint revision + 1) and `options.checkpoint`
    /// must name the base run's checkpoint, which is replaced atomically by
    /// the post-append checkpoint on success. If the file already carries
    /// the bumped revision (a crash after the append finished its
    /// checkpoint but before the caller recorded completion), the call
    /// degrades to a plain resume of the combined run.
    ///
    /// Replayed nodes report zero score-cache activity (the replay is
    /// cacheless); every other search counter matches the fresh run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Format`] when the checkpoint is missing, carries
    /// no sufficient statistics (streamed checkpoints), disagrees with the
    /// matrix shapes, or its revision cannot warm-start
    /// `options.revision`; [`CheckpointError::Mismatch`] when the
    /// persisted fingerprint is not reproducible from the checkpoint's own
    /// statistics under the current config (a stale or foreign file).
    pub fn reconstruct_robust_append(
        &self,
        combined: &StatusMatrix,
        appended: &StatusMatrix,
        rec: &Recorder,
        options: &RobustOptions<'_>,
    ) -> Result<PartialReconstruction, CheckpointError> {
        assert!(
            self.config.memory_budget.is_none() && self.config.shard.is_none(),
            "incremental append is a dense-path operation; callers reject streamed configs",
        );
        let path = options.checkpoint.clone().ok_or_else(|| {
            CheckpointError::Format("incremental append requires a checkpoint file".into())
        })?;
        let ck = Checkpoint::load(&path)?;
        if ck.revision == options.revision {
            // The previous attempt already folded this append into the
            // checkpoint before being interrupted: plain resume.
            let opts = RobustOptions {
                checkpoint: Some(path),
                resume: true,
                checkpoint_interval: options.checkpoint_interval,
                fault: options.fault,
                cancel: options.cancel,
                revision: options.revision,
            };
            return self.reconstruct_robust(combined, rec, &opts);
        }
        if ck.revision + 1 != options.revision {
            return Err(CheckpointError::Format(format!(
                "checkpoint revision {} cannot warm-start append revision {}",
                ck.revision, options.revision
            )));
        }
        let mut stats = ck.stats.clone().ok_or_else(|| {
            CheckpointError::Format(
                "checkpoint has no sufficient statistics \
                 (streamed checkpoints cannot warm-start appends)"
                    .into(),
            )
        })?;
        let n = combined.num_nodes();
        if stats.num_nodes() != n || appended.num_nodes() != n {
            return Err(CheckpointError::Format(format!(
                "node counts disagree: checkpoint {}, combined {}, appended {}",
                stats.num_nodes(),
                n,
                appended.num_nodes()
            )));
        }
        if stats.num_processes() + appended.num_processes() as u64
            != combined.num_processes() as u64
        {
            return Err(CheckpointError::Format(format!(
                "process counts disagree: checkpoint {} + appended {} != combined {}",
                stats.num_processes(),
                appended.num_processes(),
                combined.num_processes()
            )));
        }

        let (combined_cols, appended_cols) = {
            let _p = rec.phase("status_columns");
            (combined.columns(), appended.columns())
        };

        // The statistics' integrity was already established when
        // `Checkpoint::load` re-verified their content digest, so the
        // warm path spends no `O(n²)` pipeline work validating the past:
        // per-node splicing below still compares every persisted
        // candidate list against the freshly derived one, which is the
        // check correctness actually rests on. A checkpoint from a
        // different search configuration simply fails those comparisons
        // node by node and degrades to a full re-search.

        // Fold the appended processes into the sufficient statistics —
        // work proportional to the new columns only — and derive the
        // post-append correlation matrix from the updated counts.
        let corr = {
            let _p = rec.phase("stats_append");
            stats.append(&appended_cols, self.config.threads);
            if rec.is_enabled() {
                rec.add("append_processes", appended_cols.num_processes() as u64);
            }
            stats.correlation(self.config.correlation)
        };

        // τ and candidate sets over the combined statistics, exactly as
        // the dense pipeline computes them.
        let (kmeans, tau) = {
            let _p = rec.phase("threshold");
            let kmeans = pinned_two_means(&corr.upper_triangle());
            let tau = match self.config.threshold {
                ThresholdMode::Auto => kmeans.tau,
                ThresholdMode::Fixed(t) => t,
                ThresholdMode::ScaledAuto(s) => kmeans.tau * s,
            };
            (kmeans, tau)
        };
        if rec.is_enabled() {
            rec.value("tau", tau);
            rec.value("tau_unscaled", kmeans.tau);
            let above = corr.upper_triangle().iter().filter(|&&v| v > tau).count();
            rec.add("pairs_above_tau", above as u64);
        }

        let candidates: Vec<Vec<NodeId>> = {
            let _p = rec.phase("candidate_pruning");
            (0..n)
                .map(|i| {
                    candidate_parents(&corr, i as NodeId, tau, self.config.search.max_candidates)
                })
                .collect()
        };
        if rec.is_enabled() {
            for cands in &candidates {
                rec.histogram("candidate_set_size", cands.len());
            }
        }

        let outcome = {
            let _p = rec.phase("parent_search");
            self.append_search(
                &candidates,
                &combined_cols,
                &appended_cols,
                &ck,
                &stats,
                tau,
                rec,
                _p.span_id(),
                options,
                &path,
            )?
        };

        Ok(self.assemble_dense(n, tau, kmeans, outcome, rec))
    }

    /// [`reconstruct_robust`](Self::reconstruct_robust) starting from the
    /// column bitset view — the entry point for out-of-core callers that
    /// streamed the columns straight off disk
    /// (`diffnet_simulate::io::load_status_columns`) and never held the
    /// row-major matrix.
    ///
    /// Dispatches on the config: with
    /// [`memory_budget`](TendsConfig::memory_budget) or
    /// [`shard`](TendsConfig::shard) set it runs the streamed
    /// sparse-candidate pipeline (phases `tau_sample`, `streamed_fold`);
    /// otherwise the dense matrix pipeline, unchanged.
    pub fn reconstruct_robust_from_columns(
        &self,
        cols: &NodeColumns,
        rec: &Recorder,
        options: &RobustOptions<'_>,
    ) -> Result<PartialReconstruction, CheckpointError> {
        if self.config.memory_budget.is_some() || self.config.shard.is_some() {
            return self.reconstruct_streamed(cols, rec, options);
        }
        let n = cols.num_nodes();

        // Lines 2–4: pairwise correlation values.
        // With checkpointing enabled the same tiled pass also captures the
        // pairwise sufficient statistics (β, per-node ones, upper-triangle
        // n11) that make later cascade appends incremental; both variants
        // produce bit-identical matrices.
        let (corr, stats) = {
            let _p = rec.phase("correlation_matrix");
            if options.checkpoint.is_some() {
                let (corr, stats) = CorrelationMatrix::compute_observed_with_stats(
                    cols,
                    self.config.correlation,
                    self.config.threads,
                    rec,
                );
                (corr, Some(stats))
            } else {
                let corr = CorrelationMatrix::compute_observed(
                    cols,
                    self.config.correlation,
                    self.config.threads,
                    rec,
                );
                (corr, None)
            }
        };

        // Line 5: threshold via pinned 2-means over non-negative values.
        let (kmeans, tau) = {
            let _p = rec.phase("threshold");
            let kmeans = pinned_two_means(&corr.upper_triangle());
            let tau = match self.config.threshold {
                ThresholdMode::Auto => kmeans.tau,
                ThresholdMode::Fixed(t) => t,
                ThresholdMode::ScaledAuto(s) => kmeans.tau * s,
            };
            (kmeans, tau)
        };
        if rec.is_enabled() {
            rec.value("tau", tau);
            rec.value("tau_unscaled", kmeans.tau);
            let above = corr.upper_triangle().iter().filter(|&&v| v > tau).count();
            rec.add("pairs_above_tau", above as u64);
        }

        // Lines 10–12: per-node candidate pruning.
        let candidates: Vec<Vec<NodeId>> = {
            let _p = rec.phase("candidate_pruning");
            (0..n)
                .map(|i| {
                    candidate_parents(&corr, i as NodeId, tau, self.config.search.max_candidates)
                })
                .collect()
        };
        if rec.is_enabled() {
            for cands in &candidates {
                rec.histogram("candidate_set_size", cands.len());
            }
        }

        // Lines 6–20: per-node parent search (nodes are independent, so
        // this parallelizes embarrassingly).
        let outcome = {
            let _p = rec.phase("parent_search");
            self.search_all(
                &candidates,
                cols,
                tau,
                stats,
                rec,
                _p.span_id(),
                options,
                0,
                n,
            )?
        };

        Ok(self.assemble_dense(n, tau, kmeans, outcome, rec))
    }

    /// Line 21 plus bookkeeping, shared by the dense and the incremental
    /// append paths: direction post-processing over a full (unsharded) set
    /// of node results, then assembly into a [`PartialReconstruction`].
    fn assemble_dense(
        &self,
        n: usize,
        tau: f64,
        kmeans: PinnedKmeans,
        outcome: SearchOutcome,
        rec: &Recorder,
    ) -> PartialReconstruction {
        let node_results = outcome.results;

        // Line 21: a directed edge from each inferred parent to its child,
        // then the configured direction post-processing.
        let _p = rec.phase("direction");
        let mut builder = GraphBuilder::new(n);
        let mut global_score = 0.0;
        for (i, res) in node_results.iter().enumerate() {
            for &p in &res.parents {
                match self.config.direction {
                    DirectionPolicy::AsIs => {
                        builder.add_edge(p, i as NodeId);
                    }
                    DirectionPolicy::Symmetrize => {
                        builder.add_reciprocal(p, i as NodeId);
                    }
                    DirectionPolicy::MutualOnly => {
                        if node_results[p as usize].parents.contains(&(i as NodeId)) {
                            builder.add_edge(p, i as NodeId);
                        }
                    }
                }
            }
            global_score += res.score;
        }
        let graph = builder.build();
        drop(_p);
        if rec.is_enabled() {
            rec.add("edges_emitted", graph.edge_count() as u64);
        }

        let failed_nodes: Vec<NodeId> = outcome.failures.iter().map(|&(i, _)| i).collect();
        PartialReconstruction {
            result: TendsResult {
                graph,
                tau,
                kmeans,
                node_results,
                global_score,
            },
            failed_nodes,
            errors: outcome.failures,
            resumed_nodes: outcome.resumed_nodes,
            checkpoint_flushes: outcome.flushes,
            delta_records: outcome.delta_records,
        }
    }

    /// The out-of-core pipeline: τ from a budget-sized systematic pair
    /// sample, candidates from bounded sparse accumulators folded tile by
    /// tile, parent searches restricted to the configured shard. The
    /// dense `n × n` matrix never exists; see [`crate::stream`] for the
    /// determinism argument (results are invariant to threads, SIMD tier,
    /// and shard count, and bit-identical to the dense path whenever the
    /// τ sample is exhaustive).
    fn reconstruct_streamed(
        &self,
        cols: &NodeColumns,
        rec: &Recorder,
        options: &RobustOptions<'_>,
    ) -> Result<PartialReconstruction, CheckpointError> {
        let n = cols.num_nodes();
        let shard = self.config.shard.unwrap_or_else(|| Shard::full(n));
        assert!(
            shard.start <= shard.end && shard.end as usize <= n,
            "shard {}..{} out of range for n = {n}",
            shard.start,
            shard.end,
        );
        // MutualOnly needs the parent set of every node in the graph;
        // a shard only computes its own range. Callers (CLI, daemon)
        // reject the combination with a typed error before getting here.
        assert!(
            self.config.direction != DirectionPolicy::MutualOnly || shard.len() == n,
            "MutualOnly direction requires an unsharded run",
        );

        // τ from the deterministic systematic pair sample.
        let (kmeans, tau) = {
            let _p = rec.phase("tau_sample");
            let sample = stream::sample_tau(
                cols,
                self.config.correlation,
                self.config.memory_budget,
                self.config.threads,
            );
            if rec.is_enabled() {
                rec.add("tau_sample_pairs", sample.sampled_pairs);
                rec.add("tau_sample_stride", sample.stride);
                let mut span = rec.span_with_parent("rss_sample", _p.span_id());
                if let Some(rss) = diffnet_observe::current_rss_bytes() {
                    span.attr("rss_bytes", rss);
                }
            }
            let tau = match self.config.threshold {
                ThresholdMode::Auto => sample.kmeans.tau,
                ThresholdMode::Fixed(t) => t,
                ThresholdMode::ScaledAuto(s) => sample.kmeans.tau * s,
            };
            (sample.kmeans, tau)
        };
        if rec.is_enabled() {
            rec.value("tau", tau);
            rec.value("tau_unscaled", kmeans.tau);
        }

        // Tile fold: above-τ pairs stream straight into the bounded
        // per-node accumulators; candidate lists come out in
        // candidate_parents order.
        let fold = {
            let _p = rec.phase("streamed_fold");
            let fold = stream::fold_candidates(
                cols,
                self.config.correlation,
                tau,
                self.config.search.max_candidates,
                shard,
                self.config.threads,
            );
            if rec.is_enabled() {
                rec.worker_chunks("streamed_fold", &fold.chunks_per_worker);
                rec.add("pairs_above_tau", fold.pairs_above_tau);
                rec.add("candidate_evictions", fold.candidate_evictions);
                rec.add("correlation_pairs", fold.scanned_pairs);
                rec.add("correlation_tiles", fold.tiles);
                for cands in &fold.candidates {
                    rec.histogram("candidate_set_size", cands.len());
                }
                let mut span = rec.span_with_parent("rss_sample", _p.span_id());
                if let Some(rss) = diffnet_observe::current_rss_bytes() {
                    span.attr("rss_bytes", rss);
                }
            }
            fold
        };
        let candidates = fold.candidates;

        // Parent searches for the shard's nodes only; node ids stay
        // global in spans, fault sites, and checkpoint entries.
        let outcome = {
            let _p = rec.phase("parent_search");
            self.search_all(
                &candidates,
                cols,
                tau,
                // No sufficient statistics: the streamed path never holds
                // the dense pair state an append would fold into, so its
                // checkpoints resume but do not warm-start appends.
                None,
                rec,
                _p.span_id(),
                options,
                shard.start,
                n,
            )?
        };
        let node_results = outcome.results;

        let _p = rec.phase("direction");
        let mut builder = GraphBuilder::new(n);
        let mut global_score = 0.0;
        for (k, res) in node_results.iter().enumerate() {
            let child = shard.start + k as NodeId;
            for &p in &res.parents {
                match self.config.direction {
                    DirectionPolicy::AsIs => {
                        builder.add_edge(p, child);
                    }
                    DirectionPolicy::Symmetrize => {
                        builder.add_reciprocal(p, child);
                    }
                    DirectionPolicy::MutualOnly => {
                        // Asserted above: the shard covers every node, so
                        // shard-local indexing is global indexing.
                        if node_results[(p - shard.start) as usize]
                            .parents
                            .contains(&child)
                        {
                            builder.add_edge(p, child);
                        }
                    }
                }
            }
            global_score += res.score;
        }
        let graph = builder.build();
        drop(_p);
        if rec.is_enabled() {
            rec.add("edges_emitted", graph.edge_count() as u64);
        }

        let failed_nodes: Vec<NodeId> = outcome.failures.iter().map(|&(i, _)| i).collect();
        Ok(PartialReconstruction {
            result: TendsResult {
                graph,
                tau,
                kmeans,
                node_results,
                global_score,
            },
            failed_nodes,
            errors: outcome.failures,
            resumed_nodes: outcome.resumed_nodes,
            checkpoint_flushes: outcome.flushes,
            delta_records: outcome.delta_records,
        })
    }

    /// Signature of the search-relevant configuration for checkpoint
    /// fingerprints. `threads` is deliberately excluded (results are
    /// thread-count invariant) and so is `direction` (applied after the
    /// search, to fresh and restored results alike). The streamed path
    /// appends its budget and shard: the budget sizes the τ sample (so
    /// different budgets can mean different τ) and a shard's checkpoint
    /// only covers its own node range — neither may silently resume the
    /// other's file.
    fn config_signature(&self) -> String {
        let mut sig = format!(
            "correlation={:?};search={:?}",
            self.config.correlation, self.config.search
        );
        if self.config.memory_budget.is_some() || self.config.shard.is_some() {
            let shard = self.config.shard.map(|s| (s.start, s.end));
            sig.push_str(&format!(
                ";streamed=1;budget={:?};shard={:?}",
                self.config.memory_budget, shard
            ));
        }
        sig
    }

    /// Runs the per-node searches on a cost-aware worker pool.
    ///
    /// Per-node search cost varies wildly: with `k = |P_i|` candidates a
    /// node enumerates `Θ(k²)` combinations (at the default
    /// `max_combo_size = 2`) while a fully pruned node scores only the
    /// empty set. Chunks are therefore weighted by the `1 + k²` estimate
    /// (see [`parallel::cost_chunks`]) so a handful of hub nodes doesn't
    /// serialize the pool. Each worker owns one [`SearchScratch`]
    /// (counting workspace + score cache) reused across all its nodes;
    /// each node's result depends only on its id, so the output is
    /// identical for every thread count — and so are the summed
    /// search/workspace/cache counters reported through `rec` (per-worker
    /// chunk claims are the one scheduler-dependent datum, and land in the
    /// runtime-only report section).
    ///
    /// `candidates` may cover a node-range shard rather than all nodes:
    /// `base` is the global id of the slice's first node (0 for dense
    /// runs) and `global_n` the full node count — spans, fault sites, and
    /// checkpoint entries always use global ids, while results index by
    /// `id − base`.
    #[allow(clippy::too_many_arguments)]
    fn search_all(
        &self,
        candidates: &[Vec<NodeId>],
        cols: &diffnet_simulate::NodeColumns,
        tau: f64,
        stats: Option<PairStats>,
        rec: &Recorder,
        parent_span: Option<SpanId>,
        options: &RobustOptions<'_>,
        base: NodeId,
        global_n: usize,
    ) -> Result<SearchOutcome, CheckpointError> {
        let n = candidates.len();
        let fp = checkpoint::fingerprint(
            cols.num_processes(),
            global_n,
            tau,
            &self.config_signature(),
            options.revision,
            candidates,
        );

        // Prior progress: a resumed node is returned from the checkpoint
        // instead of searched. A missing file is an empty checkpoint.
        let mut restored: BTreeMap<NodeId, CheckpointEntry> = BTreeMap::new();
        if let (Some(path), true) = (&options.checkpoint, options.resume) {
            if path.exists() {
                let ck = Checkpoint::load(path)?;
                if ck.fingerprint != fp {
                    return Err(CheckpointError::Mismatch {
                        expected: format!("{fp:016x}"),
                        found: format!("{:016x}", ck.fingerprint),
                    });
                }
                let stray = ck
                    .entries
                    .range(..base)
                    .next()
                    .or_else(|| ck.entries.range(base + n as NodeId..).next());
                if let Some((&id, _)) = stray {
                    return Err(CheckpointError::Format(if base == 0 {
                        format!("node {id} out of range for n = {n}")
                    } else {
                        format!(
                            "node {id} out of range for shard {base}..{}",
                            base + n as NodeId
                        )
                    }));
                }
                restored = ck.entries;
            }
        }
        let resumed_nodes = restored.len();
        let fault = options.fault;
        let interval = options.checkpoint_interval.max(1);
        let checkpoint_path = options.checkpoint.as_deref();

        // Checkpointing starts with one atomic write of the header
        // (fingerprint, revision, sufficient statistics) plus any restored
        // entries. From then on the run only *appends* delta records. The
        // writer thread performs the initial save as its first action and
        // then owns every fsync, so the search pool never blocks on
        // checkpoint I/O — not even for the header write.
        let mut initial = None;
        if checkpoint_path.is_some() {
            initial = Some(Checkpoint {
                fingerprint: fp,
                revision: options.revision,
                stats,
                entries: restored.clone(),
            });
        }

        let costs: Vec<u64> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if restored.contains_key(&(base + i as NodeId)) {
                    1
                } else {
                    1 + (c.len() * c.len()) as u64
                }
            })
            .collect();

        // Completed-node records accumulate in a shared queue; the channel
        // is only a doorbell, rung once `interval` records are pending, so
        // writer wakeups track flush-sized batches instead of nodes — on a
        // single-core box every extra wakeup is a context switch stolen
        // from the search pool. `Sender` is `Send` but not `Sync` and the
        // pool closure must be `Sync`, so workers take a mutex around the
        // (cheap, non-blocking) ring; without a checkpoint the doorbell is
        // born disconnected and the queue stays empty.
        let (tx, rx) = mpsc::channel::<()>();
        let doorbell = checkpoint_path.map(|_| Mutex::new(tx));
        let queue: Mutex<Vec<(NodeId, CheckpointEntry)>> = Mutex::new(Vec::new());

        let (results, pool, writer_result) = std::thread::scope(|scope| {
            let writer = initial.take().map(|ck| {
                let path = checkpoint_path.expect("checkpoint path");
                let queue = &queue;
                scope.spawn(move || delta_writer(rx, queue, ck, path, interval, fault))
            });
            let (results, pool) = parallel::run_weighted_stats(
                &costs,
                4,
                self.config.threads,
                SearchScratch::new,
                |scratch, i| -> Result<(NodeSearchResult, WorkspaceStats), NodeError> {
                    let id = base + i as NodeId;
                    if let Some(entry) = restored.get(&id) {
                        return Ok((entry.clone().into_result(), entry.ws));
                    }
                    if let Some(flag) = options.cancel {
                        if flag.load(std::sync::atomic::Ordering::Relaxed) {
                            return Err(NodeError::Cancelled);
                        }
                    }
                    fault
                        .hit_indexed("node_search", u64::from(id))
                        .map_err(NodeError::Io)?;
                    // One span per freshly searched node, parented under the
                    // parent_search phase span (restored nodes do no work and
                    // get none). Ends when the guard drops — including on the
                    // error path, where it records without cache attributes.
                    let mut span = rec.span_with_parent("node_search", parent_span);
                    span.attr("node", u64::from(id));
                    span.attr("candidates", candidates[i].len() as u64);
                    let before = scratch.ws.stats();
                    let res =
                        find_parents_with(scratch, cols, id, &candidates[i], &self.config.search)
                            .map_err(NodeError::Search)?;
                    let after = scratch.ws.stats();
                    span.attr("score_cache_hits", res.cache_stats.hits);
                    span.attr("score_cache_misses", res.cache_stats.misses);
                    // The per-node workspace delta, not the pool total: it is
                    // what the checkpoint stores, so a resumed run can report
                    // the same summed counters as an uninterrupted one.
                    let ws = WorkspaceStats {
                        refinements: after.refinements - before.refinements,
                        rebases: after.rebases - before.rebases,
                    };
                    if let Some(bell) = &doorbell {
                        // The joint candidate table is the warm state the
                        // next cascade append replays from; an oversized
                        // candidate set just re-searches on append.
                        let table = if candidates[i].len() <= checkpoint::MAX_TABLE_CANDIDATES {
                            JointTable::from_cols(cols, id, &candidates[i])
                                .ok()
                                .map(|t| t.cells().to_vec())
                        } else {
                            None
                        };
                        let entry = CheckpointEntry::from_result(&res, ws, table);
                        let backlog = {
                            let mut q = queue.lock().expect("delta queue lock");
                            q.push((id, entry));
                            q.len()
                        };
                        // Ring only at the durability floor; a busy writer
                        // coalesces repeat rings when it next drains.
                        if backlog >= interval {
                            let _ = bell.lock().expect("doorbell lock").send(());
                        }
                    }
                    Ok((res, ws))
                },
            );
            // Disconnect the doorbell so the writer drains the queue one
            // last time and exits, then collect its outcome before any
            // result leaves this function — the final compaction is
            // durable before edges are reported.
            drop(doorbell);
            let writer_result = writer.map(|h| h.join().expect("delta writer thread panicked"));
            (results, pool, writer_result)
        });
        let (flushes, delta_records) = match writer_result {
            Some(r) => r?,
            None => (0, 0),
        };

        let mut node_results = Vec::with_capacity(n);
        let mut failures: Vec<(NodeId, NodeError)> = Vec::new();
        let (mut refinements, mut rebases) = (0u64, 0u64);
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok((res, ws)) => {
                    refinements += ws.refinements;
                    rebases += ws.rebases;
                    node_results.push(res);
                }
                Err(e) => {
                    failures.push((base + i as NodeId, e));
                    // A failed node degrades to "no inferred parents"; the
                    // placeholder keeps node_results indexable by id.
                    node_results.push(NodeSearchResult {
                        parents: Vec::new(),
                        score: 0.0,
                        candidates: candidates[i].clone(),
                        stats: SearchStats::default(),
                        cache_stats: ScoreCacheStats::default(),
                    });
                }
            }
        }

        if rec.is_enabled() {
            rec.worker_chunks("parent_search", &pool.chunks_per_worker);
            let mut total = SearchStats::default();
            let mut cache = ScoreCacheStats::default();
            for r in &node_results {
                total.merge(&r.stats);
                cache.merge(&r.cache_stats);
            }
            rec.add("combinations_scored", total.evaluations as u64);
            rec.add("bound_rejections", total.bound_rejections as u64);
            rec.add("greedy_rounds", total.greedy_rounds as u64);
            rec.add("score_cache_hits", cache.hits);
            rec.add("score_cache_misses", cache.misses);
            rec.add("workspace_refinements", refinements);
            rec.add("workspace_rebases", rebases);
        }
        Ok(SearchOutcome {
            results: node_results,
            failures,
            resumed_nodes,
            flushes,
            delta_records,
        })
    }

    /// The append-path search stage: replays clean nodes from persisted
    /// joint tables (merged with a delta table over the appended columns),
    /// re-searches dirty nodes against the combined columns, and replaces
    /// the pre-append checkpoint with the post-append one in a single
    /// atomic rewrite — a crash anywhere before that write leaves the old
    /// revision intact, so a restarted append redoes the same idempotent
    /// fold.
    #[allow(clippy::too_many_arguments)]
    fn append_search(
        &self,
        candidates: &[Vec<NodeId>],
        combined_cols: &NodeColumns,
        appended_cols: &NodeColumns,
        old: &Checkpoint,
        stats: &PairStats,
        tau: f64,
        rec: &Recorder,
        parent_span: Option<SpanId>,
        options: &RobustOptions<'_>,
        path: &Path,
    ) -> Result<SearchOutcome, CheckpointError> {
        let n = candidates.len();
        let fp = checkpoint::fingerprint(
            combined_cols.num_processes(),
            n,
            tau,
            &self.config_signature(),
            options.revision,
            candidates,
        );

        // A node is *clean* when its freshly computed candidate list is
        // identical to the one the checkpointed search ran over and a
        // joint table was persisted for it: the replayed search then sees
        // exactly the counts the combined columns would produce.
        // Everything else is dirty and re-searches from the columns.
        let clean: Vec<bool> = (0..n)
            .map(|i| {
                old.entries
                    .get(&(i as NodeId))
                    .is_some_and(|e| e.table.is_some() && e.candidates == candidates[i])
            })
            .collect();
        let fault = options.fault;

        // Replays marginalize a 2^k-cell table instead of re-counting β
        // process columns, so they weigh far less than a dirty search.
        let costs: Vec<u64> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if clean[i] {
                    1 + c.len() as u64
                } else {
                    1 + (c.len() * c.len()) as u64
                }
            })
            .collect();
        type NodeOut = (NodeSearchResult, WorkspaceStats, Option<Vec<[u64; 2]>>);
        let (results, pool) = parallel::run_weighted_stats(
            &costs,
            4,
            self.config.threads,
            SearchScratch::new,
            |scratch, i| -> Result<NodeOut, NodeError> {
                let id = i as NodeId;
                if clean[i] {
                    let entry = old.entries.get(&id).expect("clean implies entry");
                    let cells = entry.table.clone().expect("clean implies table");
                    let mut sorted = entry.candidates.clone();
                    sorted.sort_unstable();
                    let mut table = JointTable::from_parts(id, sorted, cells)
                        .expect("persisted table shape is validated on load");
                    let delta = JointTable::from_cols(appended_cols, id, &candidates[i])
                        .expect("table-sized candidate sets tabulate");
                    table.merge(&delta);
                    let res =
                        find_parents_reference(&table, id, &candidates[i], &self.config.search)
                            .map_err(NodeError::Search)?;
                    // Workspace activity is carried over from the original
                    // search: the replay itself never touches a workspace.
                    return Ok((res, entry.ws, Some(table.cells().to_vec())));
                }
                if let Some(flag) = options.cancel {
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        return Err(NodeError::Cancelled);
                    }
                }
                fault
                    .hit_indexed("node_search", u64::from(id))
                    .map_err(NodeError::Io)?;
                let mut span = rec.span_with_parent("node_search", parent_span);
                span.attr("node", u64::from(id));
                span.attr("candidates", candidates[i].len() as u64);
                let before = scratch.ws.stats();
                let res = find_parents_with(
                    scratch,
                    combined_cols,
                    id,
                    &candidates[i],
                    &self.config.search,
                )
                .map_err(NodeError::Search)?;
                let after = scratch.ws.stats();
                span.attr("score_cache_hits", res.cache_stats.hits);
                span.attr("score_cache_misses", res.cache_stats.misses);
                let ws = WorkspaceStats {
                    refinements: after.refinements - before.refinements,
                    rebases: after.rebases - before.rebases,
                };
                let table = if candidates[i].len() <= checkpoint::MAX_TABLE_CANDIDATES {
                    JointTable::from_cols(combined_cols, id, &candidates[i])
                        .ok()
                        .map(|t| t.cells().to_vec())
                } else {
                    None
                };
                Ok((res, ws, table))
            },
        );

        let mut next = Checkpoint {
            fingerprint: fp,
            revision: options.revision,
            stats: Some(stats.clone()),
            entries: BTreeMap::new(),
        };
        let mut node_results = Vec::with_capacity(n);
        let mut failures: Vec<(NodeId, NodeError)> = Vec::new();
        let (mut refinements, mut rebases) = (0u64, 0u64);
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok((res, ws, table)) => {
                    refinements += ws.refinements;
                    rebases += ws.rebases;
                    next.entries
                        .insert(i as NodeId, CheckpointEntry::from_result(&res, ws, table));
                    node_results.push(res);
                }
                Err(e) => {
                    failures.push((i as NodeId, e));
                    node_results.push(NodeSearchResult {
                        parents: Vec::new(),
                        score: 0.0,
                        candidates: candidates[i].clone(),
                        stats: SearchStats::default(),
                        cache_stats: ScoreCacheStats::default(),
                    });
                }
            }
        }
        // The one write of the append path. Failed (e.g. cancelled) nodes
        // are simply absent, so a restart resumes the post-append revision
        // and searches only the gaps.
        next.save(path)?;

        let reused = clean.iter().filter(|&&c| c).count();
        if rec.is_enabled() {
            rec.worker_chunks("parent_search", &pool.chunks_per_worker);
            let mut total = SearchStats::default();
            let mut cache = ScoreCacheStats::default();
            for r in &node_results {
                total.merge(&r.stats);
                cache.merge(&r.cache_stats);
            }
            rec.add("combinations_scored", total.evaluations as u64);
            rec.add("bound_rejections", total.bound_rejections as u64);
            rec.add("greedy_rounds", total.greedy_rounds as u64);
            rec.add("score_cache_hits", cache.hits);
            rec.add("score_cache_misses", cache.misses);
            rec.add("workspace_refinements", refinements);
            rec.add("workspace_rebases", rebases);
            rec.add("dirty_nodes", (n - reused) as u64);
            rec.add("nodes_reused", reused as u64);
        }
        Ok(SearchOutcome {
            results: node_results,
            failures,
            resumed_nodes: reused,
            flushes: 1,
            delta_records: 0,
        })
    }
}

/// Outcome of the per-node search stage.
struct SearchOutcome {
    /// One entry per node (placeholders for failed nodes).
    results: Vec<NodeSearchResult>,
    /// Per-node failures, ascending node order.
    failures: Vec<(NodeId, NodeError)>,
    /// Nodes restored from the checkpoint (or, on the append path,
    /// replayed from persisted joint tables).
    resumed_nodes: usize,
    /// Paced group-commit syncs of the delta log.
    flushes: u64,
    /// Delta records appended before the final compaction.
    delta_records: u64,
}

/// The delta-writer loop: atomically writes the initial checkpoint (header
/// plus restored entries), then drains completed-node records from the
/// shared queue and appends them as single-line delta records.
/// Workers ring the doorbell only once `interval` records are queued, and
/// each wakeup swaps out the *whole* queue — including anything that piled
/// up while the previous fsync was in flight — so a single write+fsync
/// covers the batch and both wakeups and fsyncs track flush-sized batches
/// instead of node count. `interval` is the durability floor: a producer
/// slower than the disk may leave up to `interval - 1` records unflushed
/// until more arrive (or the pool finishes), exactly the granularity the
/// old fixed-batch writer guaranteed.
///
/// Durability is two-tier, database group-commit style. Every
/// `interval`-sized batch is *written* to the log immediately — after the
/// write a process crash loses nothing, the records are in the page
/// cache. `fsync` (power-loss durability) is paced: the first batch syncs
/// at once, then a sync runs only when [`SYNC_PACING`] × the previous
/// sync's own cost has elapsed since it finished, and always once more at
/// the end. On a fast disk that is a sync every few batches; on a slow
/// disk the sync tax stays a bounded fraction of wall-clock instead of
/// serializing the run behind the disk.
///
/// When the doorbell disconnects the remainder is written and synced. The
/// log is compacted — one atomic rewrite of header plus deduplicated
/// entries — only when a delta line superseded an entry already present;
/// a run whose deltas are all fresh nodes leaves header + unique delta
/// lines, which loads to the identical state, so the rewrite (and its
/// fsync) is skipped. A crash mid-run leaves header + delta lines, which
/// [`Checkpoint::load`] compacts on read.
///
/// Returns `(flushes, delta_records)`. The first failure is sticky: later
/// records are still drained (workers must never block on a dead writer)
/// but nothing more is written, and the error surfaces after the pool
/// finishes.
fn delta_writer(
    rx: mpsc::Receiver<()>,
    queue: &Mutex<Vec<(NodeId, CheckpointEntry)>>,
    mut ck: Checkpoint,
    path: &Path,
    interval: usize,
    fault: &FaultPlan,
) -> Result<(u64, u64), CheckpointError> {
    let mut file: Option<std::fs::File> = None;
    let mut pending: Vec<String> = Vec::new();
    let mut flushes = 0u64;
    let mut delta_records = 0u64;
    let mut unsynced = false;
    let mut sync_cost = std::time::Duration::ZERO;
    let mut last_sync_end = std::time::Instant::now();
    // The initial save runs here — on the writer thread, concurrently with
    // the first node searches — and must complete before any delta line is
    // appended; the single-threaded loop below guarantees that ordering. A
    // crash before it lands leaves no (or a stale) checkpoint, which the
    // next run detects by fingerprint and simply restarts.
    let mut error: Option<CheckpointError> = ck.save(path).err();
    let mut superseded = false;
    let mut open = true;
    while open {
        // Block for one ring (or the disconnect), then swallow any backlog
        // of repeat rings — the queue swap below picks up every record
        // they announced, and the final swap after a disconnect catches a
        // sub-interval tail that never rang at all.
        if rx.recv().is_err() {
            open = false;
        }
        while rx.try_recv().is_ok() {}
        let batch = std::mem::take(&mut *queue.lock().expect("delta queue lock"));
        for (id, entry) in batch {
            if error.is_none() {
                pending.push(Checkpoint::entry_line(id, &entry));
            }
            superseded |= ck.entries.insert(id, entry).is_some();
        }
        if error.is_none() && pending.len() >= interval {
            write_batch(
                &mut file,
                path,
                &mut pending,
                &mut delta_records,
                &mut unsynced,
                &mut error,
            );
            // Group commit: the first sync runs immediately (zero recorded
            // cost), later ones only once their pacing budget has elapsed.
            if error.is_none() && unsynced && last_sync_end.elapsed() >= SYNC_PACING * sync_cost {
                sync_delta(
                    &mut file,
                    &mut flushes,
                    &mut unsynced,
                    &mut sync_cost,
                    &mut last_sync_end,
                    fault,
                    &mut error,
                );
            }
        }
    }
    if error.is_none() && !pending.is_empty() {
        write_batch(
            &mut file,
            path,
            &mut pending,
            &mut delta_records,
            &mut unsynced,
            &mut error,
        );
    }
    if error.is_none() && unsynced {
        sync_delta(
            &mut file,
            &mut flushes,
            &mut unsynced,
            &mut sync_cost,
            &mut last_sync_end,
            fault,
            &mut error,
        );
    }
    if error.is_none() && delta_records > 0 && superseded {
        if let Err(e) = ck.save(path) {
            error = Some(e);
        }
    }
    match error {
        Some(e) => Err(e),
        None => Ok((flushes, delta_records)),
    }
}

/// Group-commit pacing: a delta sync may run only once this multiple of
/// the previous sync's own duration has passed since it finished, keeping
/// the sync tax under ~1/[`SYNC_PACING`] of wall-clock on any disk.
const SYNC_PACING: u32 = 10;

/// Appends one batch of delta lines to the log (no sync — the bytes are
/// process-crash durable in the page cache once written).
fn write_batch(
    file: &mut Option<std::fs::File>,
    path: &Path,
    pending: &mut Vec<String>,
    delta_records: &mut u64,
    unsynced: &mut bool,
    error: &mut Option<CheckpointError>,
) {
    let io = (|| -> std::io::Result<()> {
        if file.is_none() {
            *file = Some(std::fs::OpenOptions::new().append(true).open(path)?);
        }
        let f = file.as_mut().expect("delta log handle");
        let mut buf = String::with_capacity(pending.iter().map(|l| l.len() + 1).sum());
        for line in pending.iter() {
            buf.push_str(line);
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())
    })();
    match io {
        Ok(()) => {
            *delta_records += pending.len() as u64;
            *unsynced = true;
            pending.clear();
        }
        Err(e) => *error = Some(CheckpointError::Io(e)),
    }
}

/// Syncs everything written since the last sync and records its cost for
/// the pacing decision.
fn sync_delta(
    file: &mut Option<std::fs::File>,
    flushes: &mut u64,
    unsynced: &mut bool,
    sync_cost: &mut std::time::Duration,
    last_sync_end: &mut std::time::Instant,
    fault: &FaultPlan,
    error: &mut Option<CheckpointError>,
) {
    let Some(f) = file.as_mut() else { return };
    let started = std::time::Instant::now();
    match f.sync_data() {
        Ok(()) => {
            *sync_cost = started.elapsed();
            *last_sync_end = std::time::Instant::now();
            *flushes += 1;
            *unsynced = false;
            // The fault site sits *after* the group is durable: a kill
            // rule here models a crash between delta syncs, leaving a
            // loadable header + delta log on disk; an io rule exercises
            // the fatal flush-failure path.
            if let Err(e) = fault.hit("checkpoint_flush") {
                *error = Some(CheckpointError::Io(e));
            }
        }
        Err(e) => *error = Some(CheckpointError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, p: f64, alpha: f64, beta: usize, seed: u64) -> StatusMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, p);
        IndependentCascade::new(truth, &probs)
            .observe(
                IcConfig {
                    initial_ratio: alpha,
                    num_processes: beta,
                },
                &mut rng,
            )
            .statuses
    }

    fn f_score(truth: &DiGraph, inferred: &DiGraph) -> f64 {
        let tp = inferred
            .edges()
            .filter(|&(u, v)| truth.has_edge(u, v))
            .count();
        let fp = inferred.edge_count() - tp;
        let fn_ = truth.edge_count() - tp;
        if 2 * tp + fp + fn_ == 0 {
            return 0.0;
        }
        2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
    }

    #[test]
    fn chain_topology_recall_is_high() {
        // Final statuses cannot identify edge *direction* within a pair
        // (the likelihood gain of j as parent of i equals that of i as
        // parent of j), so on a one-directional chain TENDS recovers the
        // influence pairs in both directions: recall ≈ 1, precision ≈ ½.
        let truth =
            DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let statuses = observe(&truth, 0.6, 0.2, 600, 101);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let tp = result
            .graph
            .edges()
            .filter(|&(u, v)| truth.has_edge(u, v))
            .count();
        let recall = tp as f64 / truth.edge_count() as f64;
        assert!(recall > 0.85, "recall {recall} too low");
        let f = f_score(&truth, &result.graph);
        assert!(f > 0.55, "F-score {f} too low; inferred {:?}", result.graph);
    }

    #[test]
    fn recovers_reciprocal_chain_exactly() {
        // With mutual influence edges the direction ambiguity vanishes and
        // reconstruction should be near-perfect.
        let mut edges = Vec::new();
        for i in 0..7u32 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        let truth = DiGraph::from_edges(8, &edges);
        let statuses = observe(&truth, 0.6, 0.2, 600, 108);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let f = f_score(&truth, &result.graph);
        assert!(
            f > 0.85,
            "F-score {f}; inferred {:?}",
            result.graph.edge_vec()
        );
    }

    #[test]
    fn recovers_star_topology() {
        // Hub 0 influences 6 leaves.
        let edges: Vec<(NodeId, NodeId)> = (1..7).map(|i| (0, i)).collect();
        let truth = DiGraph::from_edges(7, &edges);
        let statuses = observe(&truth, 0.5, 0.15, 600, 102);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let f = f_score(&truth, &result.graph);
        assert!(f > 0.6, "F-score {f} too low");
    }

    #[test]
    fn empty_network_stays_mostly_empty() {
        // No edges: all statuses are independent seed draws, so the
        // inferred topology must be (nearly) empty.
        let truth = DiGraph::empty(12);
        let statuses = observe(&truth, 0.5, 0.2, 400, 103);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        assert!(
            result.graph.edge_count() <= 2,
            "spurious edges: {:?}",
            result.graph.edge_vec()
        );
    }

    #[test]
    fn fixed_threshold_is_respected() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 104);
        let cfg = TendsConfig {
            threshold: ThresholdMode::Fixed(10.0), // absurdly high: prunes everything
            ..Default::default()
        };
        let result = Tends::with_config(cfg)
            .reconstruct(&statuses)
            .expect("search fits");
        assert_eq!(result.tau, 10.0);
        assert_eq!(result.graph.edge_count(), 0);
    }

    #[test]
    fn scaled_threshold_scales_auto_tau() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 105);
        let auto = Tends::new().reconstruct(&statuses).expect("search fits");
        let scaled = Tends::with_config(TendsConfig {
            threshold: ThresholdMode::ScaledAuto(2.0),
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        assert!((scaled.tau - 2.0 * auto.tau).abs() < 1e-12);
        assert!((scaled.kmeans.tau - auto.kmeans.tau).abs() < 1e-12);
    }

    #[test]
    fn global_score_is_sum_of_local_scores() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5)]);
        let statuses = observe(&truth, 0.4, 0.2, 300, 106);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let sum: f64 = result.node_results.iter().map(|r| r.score).sum();
        assert!((result.global_score - sum).abs() < 1e-9);
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let truth = DiGraph::from_edges(30, &{
            let mut e = Vec::new();
            for i in 0..29u32 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
            e
        });
        let statuses = observe(&truth, 0.4, 0.15, 200, 109);
        let seq = Tends::new().reconstruct(&statuses).expect("search fits");
        let par = Tends::with_config(TendsConfig {
            threads: 4,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        let par_all = Tends::with_config(TendsConfig {
            threads: 0,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        assert_eq!(seq.graph, par.graph);
        assert_eq!(seq.graph, par_all.graph);
        assert_eq!(seq.global_score, par.global_score);
    }

    #[test]
    fn symmetrize_policy_makes_graph_reciprocal() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 110);
        let cfg = TendsConfig {
            direction: DirectionPolicy::Symmetrize,
            ..Default::default()
        };
        let g = Tends::with_config(cfg)
            .reconstruct(&statuses)
            .expect("search fits")
            .graph;
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "({u},{v}) not reciprocal");
        }
    }

    #[test]
    fn mutual_only_is_a_subset_of_as_is() {
        let truth =
            DiGraph::from_edges(8, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (4, 5), (6, 7)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 111);
        let as_is = Tends::new()
            .reconstruct(&statuses)
            .expect("search fits")
            .graph;
        let mutual = Tends::with_config(TendsConfig {
            direction: DirectionPolicy::MutualOnly,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits")
        .graph;
        assert!(mutual.edge_count() <= as_is.edge_count());
        for (u, v) in mutual.edges() {
            assert!(as_is.has_edge(u, v));
            assert!(
                mutual.has_edge(v, u),
                "MutualOnly output must be reciprocal"
            );
        }
    }

    #[test]
    fn observed_reconstruction_matches_plain_and_populates_recorder() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 112);
        let plain = Tends::new().reconstruct(&statuses).expect("search fits");
        let rec = Recorder::new();
        let observed = Tends::new()
            .reconstruct_observed(&statuses, &rec)
            .expect("search fits");
        assert_eq!(plain.graph, observed.graph);
        assert_eq!(
            plain.global_score.to_bits(),
            observed.global_score.to_bits()
        );

        let snap = rec.snapshot();
        let names: Vec<_> = snap.phases.iter().map(|(n, _)| *n).collect();
        for phase in [
            "status_columns",
            "correlation_matrix",
            "threshold",
            "candidate_pruning",
            "parent_search",
            "direction",
        ] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        assert!(snap.counters["combinations_scored"] > 0);
        assert_eq!(
            snap.counters["combinations_scored"],
            observed.total_evaluations() as u64
        );
        assert_eq!(snap.values["tau"], observed.tau);
        let hist = &snap.histograms["candidate_set_size"];
        assert_eq!(hist.iter().sum::<u64>(), 6, "one histogram entry per node");
        assert!(snap.worker_chunks.contains_key("parent_search"));
        assert!(snap.counters["workspace_refinements"] > 0);
        assert!(snap.counters["workspace_rebases"] > 0);
        assert!(
            snap.counters["score_cache_hits"] > 0,
            "greedy rounds must reuse scores memoized during enumeration"
        );
        assert_eq!(
            snap.counters["score_cache_hits"] + snap.counters["score_cache_misses"],
            snap.counters["combinations_scored"],
            "every evaluation is exactly one cache hit or miss"
        );
        assert!(
            snap.counters["workspace_refinements"] < snap.counters["combinations_scored"],
            "cache hits must skip workspace refinements ({} vs {})",
            snap.counters["workspace_refinements"],
            snap.counters["combinations_scored"]
        );

        // Span tree: one root span per phase, and one node_search span per
        // node parented under the parent_search phase span.
        let parent = snap
            .spans
            .iter()
            .find(|s| s.name == "parent_search" && s.parent.is_none())
            .expect("parent_search root span");
        let node_spans: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "node_search")
            .collect();
        assert_eq!(node_spans.len(), 6, "one span per freshly searched node");
        let mut seen_nodes: Vec<u64> = Vec::new();
        for span in &node_spans {
            assert_eq!(span.parent, Some(parent.id));
            assert!(span.end_s >= span.start_s);
            let attr = |key: &str| span.attrs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
            seen_nodes.push(attr("node").expect("node attr"));
            assert!(attr("candidates").is_some());
            let hits = attr("score_cache_hits").expect("cache hit attr");
            let misses = attr("score_cache_misses").expect("cache miss attr");
            assert!(hits + misses > 0, "searched nodes evaluate something");
        }
        seen_nodes.sort_unstable();
        assert_eq!(seen_nodes, vec![0, 1, 2, 3, 4, 5]);
    }

    fn temp_checkpoint(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("diffnet_algo_ck_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        // β = 250 is not a multiple of 64, so partial-word column handling
        // is in play too.
        let truth = DiGraph::from_edges(10, &{
            let mut e = Vec::new();
            for i in 0..9u32 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
            e
        });
        let statuses = observe(&truth, 0.5, 0.2, 250, 77);

        for threads in [1usize, 4] {
            let tends = Tends::with_config(TendsConfig {
                threads,
                ..Default::default()
            });
            let rec = Recorder::new();
            let full = tends
                .reconstruct_observed(&statuses, &rec)
                .expect("search fits");
            let full_report = diffnet_observe::RunReport::new("tends", rec.snapshot(), threads);

            // Produce a complete checkpoint, then cut it down to the first
            // k entries — exactly what a crash after k nodes leaves behind.
            let path = temp_checkpoint(&format!("resume_{threads}.json"));
            std::fs::remove_file(&path).ok();
            let opts = RobustOptions {
                checkpoint: Some(path.clone()),
                checkpoint_interval: 3,
                ..Default::default()
            };
            let rec2 = Recorder::new();
            tends
                .reconstruct_robust(&statuses, &rec2, &opts)
                .expect("checkpointed run");
            let mut ck = Checkpoint::load(&path).expect("load checkpoint");
            assert_eq!(ck.entries.len(), 10, "final flush persists all nodes");
            for k in [1usize, 4, 9] {
                let mut cut = ck.clone();
                cut.entries = ck
                    .entries
                    .iter()
                    .take(k)
                    .map(|(&i, e)| (i, e.clone()))
                    .collect();
                cut.save(&path).expect("save partial");

                let rec3 = Recorder::new();
                let resumed = tends
                    .reconstruct_robust(
                        &statuses,
                        &rec3,
                        &RobustOptions {
                            checkpoint: Some(path.clone()),
                            resume: true,
                            checkpoint_interval: 3,
                            ..Default::default()
                        },
                    )
                    .expect("resumed run");
                assert!(resumed.is_complete());
                assert_eq!(resumed.resumed_nodes, k);
                assert_eq!(
                    resumed.result.graph, full.graph,
                    "graph (k={k}, t={threads})"
                );
                assert_eq!(
                    resumed.result.global_score.to_bits(),
                    full.global_score.to_bits(),
                    "score bits (k={k}, t={threads})"
                );
                let resumed_report =
                    diffnet_observe::RunReport::new("tends", rec3.snapshot(), threads);
                assert_eq!(
                    resumed_report.deterministic_json(),
                    full_report.deterministic_json(),
                    "deterministic report sections (k={k}, t={threads})"
                );
            }
            ck.entries.clear();
            std::fs::remove_file(&path).ok();
        }
    }

    /// Splits a matrix into its first `at` and remaining processes.
    fn split_statuses(m: &StatusMatrix, at: usize) -> (StatusMatrix, StatusMatrix) {
        let n = m.num_nodes();
        let take = |range: std::ops::Range<usize>| -> StatusMatrix {
            let mut out = StatusMatrix::new(range.len(), n);
            for (l_out, l) in range.enumerate() {
                for i in 0..n {
                    if m.get(l, i as NodeId) {
                        out.set(l_out, i as NodeId);
                    }
                }
            }
            out
        };
        (take(0..at), take(at..m.num_processes()))
    }

    #[test]
    fn incremental_append_is_byte_identical_to_fresh_combined_run() {
        // β = 260 (base 220 + appended 40) is not a multiple of 64, so
        // partial-word handling is in play on both sides of the split.
        let truth = DiGraph::from_edges(10, &{
            let mut e = Vec::new();
            for i in 0..9u32 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
            e
        });
        let combined = observe(&truth, 0.5, 0.2, 260, 79);
        let (base, appended) = split_statuses(&combined, 220);

        for threads in [1usize, 4] {
            let tends = Tends::with_config(TendsConfig {
                threads,
                ..Default::default()
            });
            let fresh = tends
                .reconstruct_observed(&combined, Recorder::disabled())
                .expect("search fits");

            let path = temp_checkpoint(&format!("append_{threads}.json"));
            std::fs::remove_file(&path).ok();
            let base_opts = RobustOptions {
                checkpoint: Some(path.clone()),
                ..Default::default()
            };
            tends
                .reconstruct_robust(&base, Recorder::disabled(), &base_opts)
                .expect("base run");

            let rec = Recorder::new();
            let warm = tends
                .reconstruct_robust_append(
                    &combined,
                    &appended,
                    &rec,
                    &RobustOptions {
                        checkpoint: Some(path.clone()),
                        revision: 1,
                        ..Default::default()
                    },
                )
                .expect("incremental append");
            assert!(warm.is_complete());
            assert_eq!(warm.result.graph, fresh.graph, "graph (t={threads})");
            assert_eq!(
                warm.result.global_score.to_bits(),
                fresh.global_score.to_bits(),
                "score bits (t={threads})"
            );
            for (i, (w, f)) in warm
                .result
                .node_results
                .iter()
                .zip(fresh.node_results.iter())
                .enumerate()
            {
                assert_eq!(w.parents, f.parents, "parents of node {i}");
                assert_eq!(w.score.to_bits(), f.score.to_bits(), "score of node {i}");
                assert_eq!(w.candidates, f.candidates, "candidates of node {i}");
                // The replay walks the identical search trajectory, so even
                // the effort counters match the fresh combined search.
                assert_eq!(w.stats, f.stats, "search stats of node {i}");
            }

            let snap = rec.snapshot();
            let reused = snap.counters["nodes_reused"];
            let dirty = snap.counters["dirty_nodes"];
            assert_eq!(reused + dirty, 10, "every node is reused or dirty");
            assert_eq!(warm.resumed_nodes as u64, reused);
            assert!(
                reused > 0,
                "a 15% append should leave some nodes replayable"
            );

            // The checkpoint advanced to the post-append revision with the
            // combined statistics, ready for the next append.
            let ck = Checkpoint::load(&path).expect("post-append checkpoint");
            assert_eq!(ck.revision, 1);
            let stats = ck.stats.expect("stats persisted");
            assert_eq!(stats.num_processes(), 260);
            assert_eq!(ck.entries.len(), 10);
            assert!(ck.entries.values().all(|e| e.table.is_some()));
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn chained_appends_stay_byte_identical() {
        // Two appends in sequence: revision 0 → 1 → 2, each warm-started
        // from the previous append's checkpoint.
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 0), (2, 3), (3, 2), (5, 6), (6, 5)]);
        let combined = observe(&truth, 0.5, 0.2, 200, 91);
        let (base01, app2) = split_statuses(&combined, 170);
        let (base0, app1) = split_statuses(&base01, 140);

        let tends = Tends::new();
        let path = temp_checkpoint("append_chain.json");
        std::fs::remove_file(&path).ok();
        tends
            .reconstruct_robust(
                &base0,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    ..Default::default()
                },
            )
            .expect("base run");
        for (revision, combined_so_far, appended) in [(1, &base01, &app1), (2, &combined, &app2)] {
            let warm = tends
                .reconstruct_robust_append(
                    combined_so_far,
                    appended,
                    Recorder::disabled(),
                    &RobustOptions {
                        checkpoint: Some(path.clone()),
                        revision,
                        ..Default::default()
                    },
                )
                .expect("incremental append");
            let fresh = tends
                .reconstruct_observed(combined_so_far, Recorder::disabled())
                .expect("fresh combined run");
            assert_eq!(
                warm.result.graph, fresh.graph,
                "graph at revision {revision}"
            );
            assert_eq!(
                warm.result.global_score.to_bits(),
                fresh.global_score.to_bits(),
                "score bits at revision {revision}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_pre_append_checkpoint_is_a_typed_mismatch_on_resume() {
        // Serve bumps the revision when it applies an append; a resume of
        // the combined run must then refuse the stale revision-0 file.
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let combined = observe(&truth, 0.5, 0.2, 180, 83);
        let (base, _appended) = split_statuses(&combined, 150);

        let tends = Tends::new();
        let path = temp_checkpoint("stale_revision.json");
        std::fs::remove_file(&path).ok();
        tends
            .reconstruct_robust(
                &base,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    ..Default::default()
                },
            )
            .expect("base run");

        let err = tends
            .reconstruct_robust(
                &combined,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    revision: 1,
                    ..Default::default()
                },
            )
            .expect_err("stale checkpoint must not resume");
        assert!(
            matches!(err, CheckpointError::Mismatch { .. }),
            "expected Mismatch, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hand_edited_checkpoint_is_rejected_by_the_append_path() {
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let combined = observe(&truth, 0.5, 0.2, 180, 87);
        let (base, appended) = split_statuses(&combined, 150);

        let tends = Tends::new();
        let path = temp_checkpoint("hand_edited.json");
        std::fs::remove_file(&path).ok();
        tends
            .reconstruct_robust(
                &base,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    ..Default::default()
                },
            )
            .expect("base run");
        let pristine = std::fs::read_to_string(&path).expect("read checkpoint");

        let append_opts = |revision| RobustOptions {
            checkpoint: Some(path.clone()),
            revision,
            ..Default::default()
        };

        // A wrong revision (double-applied batch, skipped batch) cannot
        // warm-start.
        let tampered = pristine.replacen("\"revision\":0", "\"revision\":5", 1);
        assert_ne!(tampered, pristine, "edit must hit the header");
        std::fs::write(&path, &tampered).expect("write tampered");
        let err = tends
            .reconstruct_robust_append(&combined, &appended, Recorder::disabled(), &append_opts(1))
            .expect_err("wrong revision must be rejected");
        assert!(
            matches!(&err, CheckpointError::Format(m) if m.contains("revision")),
            "expected a revision Format error, got {err:?}"
        );

        // Statistics edited into *impossible* counts (ones[0] = β with
        // unchanged pair counts) fail the consistency validation on load —
        // a typed error, not an underflow panic in the MI derivation.
        let ck = Checkpoint::from_text(&pristine, false).expect("parse pristine");
        let stats = ck.stats.as_ref().expect("stats present");
        let ones = stats.ones().to_vec();
        let needle = format!("\"ones\":\"{} ", ones[0]);
        let swap = format!("\"ones\":\"{} ", stats.num_processes());
        let tampered = pristine.replacen(&needle, &swap, 1);
        assert_ne!(tampered, pristine, "edit must hit the statistics");
        std::fs::write(&path, &tampered).expect("write tampered");
        let err = tends
            .reconstruct_robust_append(&combined, &appended, Recorder::disabled(), &append_opts(1))
            .expect_err("impossible statistics must be rejected");
        assert!(
            matches!(&err, CheckpointError::Format(m) if m.contains("inconsistent")),
            "expected a Format error about inconsistency, got {err:?}"
        );

        // Statistics edited into *plausible but different* counts no
        // longer match the content digest the base run recorded: typed
        // mismatch, not silently spliced wrong parents. Pair (0,1)'s n11
        // is pushed to its maximum consistent value.
        let n11 = stats.n11().to_vec();
        let needle = format!("\"n11\":\"{} ", n11[0]);
        let swap = format!("\"n11\":\"{} ", ones[0].min(ones[1]));
        let tampered = pristine.replacen(&needle, &swap, 1);
        assert_ne!(tampered, pristine, "edit must hit the statistics");
        std::fs::write(&path, &tampered).expect("write tampered");
        let err = tends
            .reconstruct_robust_append(&combined, &appended, Recorder::disabled(), &append_opts(1))
            .expect_err("tampered statistics must be rejected");
        assert!(
            matches!(err, CheckpointError::Mismatch { .. }),
            "expected Mismatch, got {err:?}"
        );

        // A checkpoint without statistics (streamed producer) cannot
        // warm-start an append either.
        let mut stripped = Checkpoint::from_text(&pristine, false).expect("parse pristine");
        stripped.stats = None;
        stripped.save(&path).expect("save stripped");
        let err = tends
            .reconstruct_robust_append(&combined, &appended, Recorder::disabled(), &append_opts(1))
            .expect_err("stats-free checkpoint must be rejected");
        assert!(
            matches!(&err, CheckpointError::Format(m) if m.contains("sufficient statistics")),
            "expected a Format error about statistics, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_node_failures_degrade_instead_of_aborting() {
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 0), (2, 3), (3, 2), (5, 6), (6, 5)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 113);
        let clean = Tends::new().reconstruct(&statuses).expect("search fits");

        let fault = FaultPlan::new()
            .io_error_at("node_search", 2, 1)
            .io_error_at("node_search", 5, 1);
        let partial = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    fault: &fault,
                    ..Default::default()
                },
            )
            .expect("degrades, does not abort");
        assert_eq!(
            partial.failed_nodes,
            vec![2, 5],
            "exactly the faulted nodes"
        );
        assert_eq!(partial.errors.len(), 2);
        assert!(matches!(partial.errors[0].1, NodeError::Io(_)));
        assert!(!partial.is_complete());
        // Surviving nodes are untouched by their neighbours' failures.
        for (i, res) in partial.result.node_results.iter().enumerate() {
            if i == 2 || i == 5 {
                assert!(res.parents.is_empty());
                assert_eq!(res.score, 0.0);
            } else {
                assert_eq!(res.parents, clean.node_results[i].parents, "node {i}");
            }
        }
    }

    #[test]
    fn cancelled_run_resumes_to_identical_result() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 0), (2, 3), (3, 2), (5, 6), (6, 5)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 118);
        let clean = Tends::new().reconstruct(&statuses).expect("search fits");

        let path = temp_checkpoint("cancel.json");
        std::fs::remove_file(&path).ok();
        let cancel = AtomicBool::new(true);
        let cancelled = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    cancel: Some(&cancel),
                    ..Default::default()
                },
            )
            .expect("cancellation degrades, does not abort");
        assert!(!cancelled.is_complete());
        assert_eq!(cancelled.failed_nodes.len(), 8, "every node cancelled");
        assert!(matches!(cancelled.errors[0].1, NodeError::Cancelled));

        // Clearing the flag and resuming completes the job with the same
        // result as an uninterrupted run.
        cancel.store(false, Ordering::Relaxed);
        let resumed = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    cancel: Some(&cancel),
                    ..Default::default()
                },
            )
            .expect("resumed run");
        assert!(resumed.is_complete());
        assert_eq!(resumed.result.graph, clean.graph);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_a_typed_error() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 114);
        let path = temp_checkpoint("mismatch.json");
        std::fs::remove_file(&path).ok();
        let opts = RobustOptions {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        Tends::new()
            .reconstruct_robust(&statuses, Recorder::disabled(), &opts)
            .expect("first run");

        // Same file, different threshold → different τ → different searches.
        let other = Tends::with_config(TendsConfig {
            threshold: ThresholdMode::Fixed(0.123),
            ..Default::default()
        });
        let err = other
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    ..Default::default()
                },
            )
            .expect_err("fingerprint mismatch");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 0)]);
        let statuses = observe(&truth, 0.5, 0.2, 150, 115);
        let path = temp_checkpoint("corrupt.json");
        std::fs::write(&path, "{\"format\": \"diffnet-checkpoint\", \"ver").expect("write");
        let err = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    ..Default::default()
                },
            )
            .expect_err("corrupt file");
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
        assert!(err.to_string().contains("byte"), "offset in {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_checkpoint_flush_is_fatal_and_typed() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 0)]);
        let statuses = observe(&truth, 0.5, 0.2, 150, 116);
        let path = temp_checkpoint("flushfail.json");
        std::fs::remove_file(&path).ok();
        let fault = FaultPlan::new().io_error("checkpoint_flush", 1);
        let err = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    checkpoint_interval: 1,
                    fault: &fault,
                    ..Default::default()
                },
            )
            .expect_err("flush failure surfaces");
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_with_missing_checkpoint_starts_fresh() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 0)]);
        let statuses = observe(&truth, 0.5, 0.2, 150, 117);
        let path = temp_checkpoint("fresh.json");
        std::fs::remove_file(&path).ok();
        let partial = Tends::new()
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    ..Default::default()
                },
            )
            .expect("missing file = empty checkpoint");
        assert_eq!(partial.resumed_nodes, 0);
        assert!(partial.is_complete());
        assert!(path.exists(), "final state checkpointed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn result_accessors() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let statuses = observe(&truth, 0.5, 0.2, 150, 107);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        assert_eq!(result.node_results.len(), 5);
        assert!(result.total_evaluations() >= 5);
        assert!(result.mean_candidates() >= 0.0);
    }

    /// Dense-oracle comparison harness for the streamed pipeline: at
    /// small n the τ sample is exhaustive (stride 1), so the streamed run
    /// must be bit-identical to the dense run — graph, τ, and scores.
    fn assert_streamed_matches_dense(statuses: &StatusMatrix, streamed_cfg: TendsConfig) {
        let dense_cfg = TendsConfig {
            memory_budget: None,
            shard: None,
            ..streamed_cfg
        };
        let dense = Tends::with_config(dense_cfg)
            .reconstruct(statuses)
            .expect("search fits");
        let streamed = Tends::with_config(streamed_cfg)
            .reconstruct(statuses)
            .expect("search fits");
        assert_eq!(dense.graph, streamed.graph);
        assert_eq!(dense.tau.to_bits(), streamed.tau.to_bits(), "τ drifted");
        assert_eq!(
            dense.global_score.to_bits(),
            streamed.global_score.to_bits()
        );
        for (d, s) in dense.node_results.iter().zip(&streamed.node_results) {
            assert_eq!(d.candidates, s.candidates);
            assert_eq!(d.parents, s.parents);
            assert_eq!(d.score.to_bits(), s.score.to_bits());
        }
    }

    #[test]
    fn streamed_path_is_bit_identical_to_dense() {
        let truth = DiGraph::from_edges(30, &{
            let mut e = Vec::new();
            for i in 0..29u32 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
            e
        });
        let statuses = observe(&truth, 0.4, 0.15, 300, 120);
        for threads in [1usize, 4] {
            assert_streamed_matches_dense(
                &statuses,
                TendsConfig {
                    memory_budget: Some(64 << 20),
                    threads,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn streamed_tau_matches_dense_tau_exactly() {
        // The satellite regression: τ from the streamed systematic sample
        // equals the dense 2-means τ bit-for-bit whenever the sample
        // covers every pair (always true at small n).
        let truth = DiGraph::from_edges(12, &[(0, 1), (1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]);
        let statuses = observe(&truth, 0.5, 0.2, 250, 121);
        let dense = Tends::new().reconstruct(&statuses).expect("search fits");
        let streamed = Tends::with_config(TendsConfig {
            memory_budget: Some(32 << 20),
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        assert_eq!(dense.tau.to_bits(), streamed.tau.to_bits());
        assert_eq!(dense.kmeans.tau.to_bits(), streamed.kmeans.tau.to_bits());
        // Threshold scaling composes the same way on both paths.
        let scfg = TendsConfig {
            threshold: ThresholdMode::ScaledAuto(1.5),
            memory_budget: Some(32 << 20),
            ..Default::default()
        };
        assert_streamed_matches_dense(&statuses, scfg);
    }

    #[test]
    fn sharded_union_matches_unsharded_run() {
        let truth = DiGraph::from_edges(20, &{
            let mut e = Vec::new();
            for i in 0..19u32 {
                e.push((i, i + 1));
            }
            e.push((0, 10));
            e.push((5, 15));
            e
        });
        let statuses = observe(&truth, 0.5, 0.2, 300, 122);
        let budget = Some(16u64 << 20);
        let whole = Tends::with_config(TendsConfig {
            memory_budget: budget,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        for count in [2usize, 3, 7] {
            let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
            for shard in crate::stream::plan_shards(statuses.num_nodes(), count) {
                let part = Tends::with_config(TendsConfig {
                    memory_budget: budget,
                    shard: Some(shard),
                    ..Default::default()
                })
                .reconstruct(&statuses)
                .expect("search fits");
                assert_eq!(part.node_results.len(), shard.len());
                edges.extend(part.graph.edges());
            }
            edges.sort_unstable();
            edges.dedup();
            assert_eq!(
                edges,
                whole.graph.edge_vec(),
                "{count}-shard union must equal the unsharded edge set"
            );
        }
    }

    #[test]
    fn sharded_checkpoint_resume_stays_scoped_to_the_shard() {
        let truth = DiGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (4, 5), (6, 7), (8, 9)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 123);
        let shard = Shard { start: 3, end: 8 };
        let cfg = TendsConfig {
            memory_budget: Some(8 << 20),
            shard: Some(shard),
            ..Default::default()
        };
        let path = temp_checkpoint("shard.json");
        std::fs::remove_file(&path).ok();
        let first = Tends::with_config(cfg)
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    checkpoint_interval: 1,
                    ..Default::default()
                },
            )
            .expect("first run");
        assert!(first.is_complete());
        // Resume restores exactly the shard's nodes and reproduces the
        // same edges bit-for-bit.
        let resumed = Tends::with_config(cfg)
            .reconstruct_robust(
                &statuses,
                Recorder::disabled(),
                &RobustOptions {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    ..Default::default()
                },
            )
            .expect("resumed run");
        assert_eq!(resumed.resumed_nodes, shard.len());
        assert_eq!(first.result.graph, resumed.result.graph);
        // A different shard must refuse the checkpoint (fingerprint
        // covers the shard via the config signature).
        let err = Tends::with_config(TendsConfig {
            shard: Some(Shard { start: 0, end: 3 }),
            ..cfg
        })
        .reconstruct_robust(
            &statuses,
            Recorder::disabled(),
            &RobustOptions {
                checkpoint: Some(path.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .expect_err("shard mismatch must not resume");
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_recorder_reports_streamed_phases_and_counters() {
        let truth = DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (6, 7)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 124);
        let rec = Recorder::new();
        Tends::with_config(TendsConfig {
            memory_budget: Some(8 << 20),
            ..Default::default()
        })
        .reconstruct_robust(&statuses, &rec, &RobustOptions::default())
        .expect("streamed run");
        let snapshot = rec.snapshot();
        let phases: Vec<&str> = snapshot.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            phases,
            vec![
                "status_columns",
                "tau_sample",
                "streamed_fold",
                "parent_search",
                "direction"
            ]
        );
        assert!(snapshot.counters.contains_key("pairs_above_tau"));
        assert!(snapshot.counters.contains_key("candidate_evictions"));
        assert!(snapshot.counters.contains_key("tau_sample_pairs"));
        assert!(snapshot.counters["tau_sample_stride"] >= 1);
    }

    #[test]
    fn eviction_counter_fires_when_top_k_truncates() {
        // A dense clique with a tiny max_candidates bound: every node
        // sees more above-τ partners than it may keep.
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let truth = DiGraph::from_edges(8, &edges);
        let statuses = observe(&truth, 0.6, 0.2, 300, 125);
        let rec = Recorder::new();
        let cfg = TendsConfig {
            memory_budget: Some(8 << 20),
            search: SearchParams {
                max_candidates: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        Tends::with_config(cfg)
            .reconstruct_robust(&statuses, &rec, &RobustOptions::default())
            .expect("streamed run");
        let snapshot = rec.snapshot();
        assert!(
            snapshot.counters["candidate_evictions"] > 0,
            "clique + top-1 bound must evict above-τ candidates"
        );
        // The dense path with the same bound keeps the same candidates.
        assert_streamed_matches_dense(&statuses, cfg);
    }

    #[test]
    #[should_panic(expected = "MutualOnly direction requires an unsharded run")]
    fn sharded_mutual_only_is_rejected() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 0)]);
        let statuses = observe(&truth, 0.5, 0.2, 100, 126);
        let _ = Tends::with_config(TendsConfig {
            direction: DirectionPolicy::MutualOnly,
            shard: Some(Shard { start: 0, end: 3 }),
            ..Default::default()
        })
        .reconstruct(&statuses);
    }
}
