//! The TENDS algorithm (paper Algorithm 1): end-to-end reconstruction of a
//! diffusion network topology from a status matrix.

use crate::imi::{CorrelationMatrix, CorrelationMeasure};
use crate::kmeans::{pinned_two_means, PinnedKmeans};
use crate::parallel;
use crate::score::ScoreCacheStats;
use crate::search::{
    candidate_parents, find_parents_with, NodeSearchResult, SearchError, SearchParams,
    SearchScratch, SearchStats,
};
use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_observe::Recorder;
use diffnet_simulate::StatusMatrix;

/// How the pruning threshold `τ` is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ThresholdMode {
    /// Find `τ` with the pinned 2-means over the pairwise correlation
    /// values (Algorithm 1 line 5). Default.
    #[default]
    Auto,
    /// Use a fixed threshold (for sensitivity studies).
    Fixed(f64),
    /// Find `τ` automatically, then scale it by the given factor — the
    /// paper's Fig. 10–11 sweep varies the threshold from `0.4τ` to `2τ`.
    ScaledAuto(f64),
}

/// How inferred edge directions are post-processed.
///
/// Final infection statuses carry no directional information *within* a
/// pair — the likelihood gain of `u` as a parent of `v` equals that of `v`
/// as a parent of `u` — so on networks with one-directional edges TENDS
/// tends to propose both directions. These policies let a user encode
/// domain knowledge about reciprocity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DirectionPolicy {
    /// Keep the per-node selections as-is (the paper's behaviour). Default.
    #[default]
    AsIs,
    /// Whenever `u -> v` is inferred, also add `v -> u`: appropriate when
    /// influence is known to be mutual (coauthorship, physical contact).
    Symmetrize,
    /// Keep only pairs inferred in *both* directions: raises precision on
    /// reciprocal networks by demanding agreement between the two
    /// independent per-node searches.
    MutualOnly,
}

/// Full configuration of a TENDS run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct TendsConfig {
    /// Pairwise correlation measure for pruning (IMI, or plain MI for the
    /// paper's ablation).
    pub correlation: CorrelationMeasure,
    /// Threshold selection mode.
    pub threshold: ThresholdMode,
    /// Parent-search parameters.
    pub search: SearchParams,
    /// Edge-direction post-processing.
    pub direction: DirectionPolicy,
    /// Worker threads for the per-node parent searches (each node's search
    /// is independent). `0` uses all available cores; `1` (default) runs
    /// single-threaded, which keeps timing comparisons with the
    /// single-threaded baselines honest.
    pub threads: usize,
}

/// Result of a TENDS reconstruction.
#[derive(Clone, Debug)]
pub struct TendsResult {
    /// The inferred diffusion network topology.
    pub graph: DiGraph,
    /// The pruning threshold that was applied.
    pub tau: f64,
    /// Details of the threshold clustering (the *unscaled* `τ` lives in
    /// here when [`ThresholdMode::ScaledAuto`] is used).
    pub kmeans: PinnedKmeans,
    /// Per-node search outcomes, indexed by node id.
    pub node_results: Vec<NodeSearchResult>,
    /// The global score `g(T)` of the inferred topology (Eq. 12): the sum
    /// of the per-node local scores.
    pub global_score: f64,
}

impl TendsResult {
    /// Total number of local-score evaluations across all nodes (a proxy
    /// for search effort, used by the pruning experiments).
    pub fn total_evaluations(&self) -> usize {
        self.node_results.iter().map(|r| r.stats.evaluations).sum()
    }

    /// Mean number of surviving candidate parents per node.
    pub fn mean_candidates(&self) -> f64 {
        if self.node_results.is_empty() {
            return 0.0;
        }
        self.node_results
            .iter()
            .map(|r| r.candidates.len())
            .sum::<usize>() as f64
            / self.node_results.len() as f64
    }
}

/// The TENDS estimator.
///
/// ```
/// use diffnet_graph::DiGraph;
/// use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
/// use diffnet_tends::Tends;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Hidden ground truth: a directed chain.
/// let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let probs = EdgeProbs::constant(&truth, 0.5);
/// let obs = IndependentCascade::new(&truth, &probs)
///     .observe(IcConfig { initial_ratio: 0.2, num_processes: 400 }, &mut rng);
///
/// let result = Tends::new().reconstruct(&obs.statuses).expect("default search fits");
/// assert_eq!(result.graph.node_count(), 6);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tends {
    config: TendsConfig,
}

impl Tends {
    /// TENDS with the paper's default configuration.
    pub fn new() -> Self {
        Tends::default()
    }

    /// TENDS with an explicit configuration.
    pub fn with_config(config: TendsConfig) -> Self {
        Tends { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TendsConfig {
        &self.config
    }

    /// Reconstructs the diffusion network topology from final infection
    /// statuses (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] when the search configuration asks the
    /// counting kernels to tabulate a parent set beyond their limit —
    /// unreachable with default parameters, reachable with hostile ones
    /// (see [`crate::search::find_parents`]).
    pub fn reconstruct(&self, statuses: &StatusMatrix) -> Result<TendsResult, SearchError> {
        self.reconstruct_observed(statuses, Recorder::disabled())
    }

    /// [`reconstruct`](Self::reconstruct) with instrumentation: each
    /// pipeline phase is timed on `rec`, and the load-bearing internals
    /// (pairs above `τ`, candidate-set sizes, Theorem-2 rejections,
    /// combinations scored, workspace refinements, pool utilization) are
    /// ingested at phase boundaries — the hot loops only bump plain
    /// integers. Passing [`Recorder::disabled`] makes every recorder call
    /// a branch on a constant, so `reconstruct` simply delegates here.
    ///
    /// The recorder is a parameter rather than a `TendsConfig` field
    /// because the config is `Copy` (it is embedded in sweep/ablation
    /// tables all over the workspace) and a collector handle is not.
    pub fn reconstruct_observed(
        &self,
        statuses: &StatusMatrix,
        rec: &Recorder,
    ) -> Result<TendsResult, SearchError> {
        let n = statuses.num_nodes();
        let cols = {
            let _p = rec.phase("status_columns");
            statuses.columns()
        };

        // Lines 2–4: pairwise correlation values.
        let corr = {
            let _p = rec.phase("correlation_matrix");
            CorrelationMatrix::compute_observed(
                &cols,
                self.config.correlation,
                self.config.threads,
                rec,
            )
        };

        // Line 5: threshold via pinned 2-means over non-negative values.
        let (kmeans, tau) = {
            let _p = rec.phase("threshold");
            let kmeans = pinned_two_means(&corr.upper_triangle());
            let tau = match self.config.threshold {
                ThresholdMode::Auto => kmeans.tau,
                ThresholdMode::Fixed(t) => t,
                ThresholdMode::ScaledAuto(s) => kmeans.tau * s,
            };
            (kmeans, tau)
        };
        if rec.is_enabled() {
            rec.value("tau", tau);
            rec.value("tau_unscaled", kmeans.tau);
            let above = corr.upper_triangle().iter().filter(|&&v| v > tau).count();
            rec.add("pairs_above_tau", above as u64);
        }

        // Lines 10–12: per-node candidate pruning.
        let candidates: Vec<Vec<NodeId>> = {
            let _p = rec.phase("candidate_pruning");
            (0..n)
                .map(|i| {
                    candidate_parents(&corr, i as NodeId, tau, self.config.search.max_candidates)
                })
                .collect()
        };
        if rec.is_enabled() {
            for cands in &candidates {
                rec.histogram("candidate_set_size", cands.len());
            }
        }

        // Lines 6–20: per-node parent search (nodes are independent, so
        // this parallelizes embarrassingly).
        let node_results = {
            let _p = rec.phase("parent_search");
            self.search_all(&candidates, &cols, rec)?
        };

        // Line 21: a directed edge from each inferred parent to its child,
        // then the configured direction post-processing.
        let _p = rec.phase("direction");
        let mut builder = GraphBuilder::new(n);
        let mut global_score = 0.0;
        for (i, res) in node_results.iter().enumerate() {
            for &p in &res.parents {
                match self.config.direction {
                    DirectionPolicy::AsIs => {
                        builder.add_edge(p, i as NodeId);
                    }
                    DirectionPolicy::Symmetrize => {
                        builder.add_reciprocal(p, i as NodeId);
                    }
                    DirectionPolicy::MutualOnly => {
                        if node_results[p as usize].parents.contains(&(i as NodeId)) {
                            builder.add_edge(p, i as NodeId);
                        }
                    }
                }
            }
            global_score += res.score;
        }
        let graph = builder.build();
        drop(_p);
        if rec.is_enabled() {
            rec.add("edges_emitted", graph.edge_count() as u64);
        }

        Ok(TendsResult {
            graph,
            tau,
            kmeans,
            node_results,
            global_score,
        })
    }

    /// Runs the per-node searches on a cost-aware worker pool.
    ///
    /// Per-node search cost varies wildly: with `k = |P_i|` candidates a
    /// node enumerates `Θ(k²)` combinations (at the default
    /// `max_combo_size = 2`) while a fully pruned node scores only the
    /// empty set. Chunks are therefore weighted by the `1 + k²` estimate
    /// (see [`parallel::cost_chunks`]) so a handful of hub nodes doesn't
    /// serialize the pool. Each worker owns one [`SearchScratch`]
    /// (counting workspace + score cache) reused across all its nodes;
    /// each node's result depends only on its id, so the output is
    /// identical for every thread count — and so are the summed
    /// search/workspace/cache counters reported through `rec` (per-worker
    /// chunk claims are the one scheduler-dependent datum, and land in the
    /// runtime-only report section).
    fn search_all(
        &self,
        candidates: &[Vec<NodeId>],
        cols: &diffnet_simulate::NodeColumns,
        rec: &Recorder,
    ) -> Result<Vec<NodeSearchResult>, SearchError> {
        let costs: Vec<u64> = candidates
            .iter()
            .map(|c| 1 + (c.len() * c.len()) as u64)
            .collect();
        let (results, pool) = parallel::run_weighted_stats(
            &costs,
            4,
            self.config.threads,
            SearchScratch::new,
            |scratch, i| {
                find_parents_with(
                    scratch,
                    cols,
                    i as NodeId,
                    &candidates[i],
                    &self.config.search,
                )
            },
        );
        let results: Vec<NodeSearchResult> = results.into_iter().collect::<Result<_, _>>()?;
        if rec.is_enabled() {
            rec.worker_chunks("parent_search", &pool.chunks_per_worker);
            let mut total = SearchStats::default();
            let mut cache = ScoreCacheStats::default();
            for r in &results {
                total.merge(&r.stats);
                cache.merge(&r.cache_stats);
            }
            rec.add("combinations_scored", total.evaluations as u64);
            rec.add("bound_rejections", total.bound_rejections as u64);
            rec.add("greedy_rounds", total.greedy_rounds as u64);
            rec.add("score_cache_hits", cache.hits);
            rec.add("score_cache_misses", cache.misses);
            let (mut refinements, mut rebases) = (0u64, 0u64);
            for scratch in &pool.states {
                let s = scratch.ws.stats();
                refinements += s.refinements;
                rebases += s.rebases;
            }
            rec.add("workspace_refinements", refinements);
            rec.add("workspace_rebases", rebases);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, p: f64, alpha: f64, beta: usize, seed: u64) -> StatusMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, p);
        IndependentCascade::new(truth, &probs)
            .observe(
                IcConfig {
                    initial_ratio: alpha,
                    num_processes: beta,
                },
                &mut rng,
            )
            .statuses
    }

    fn f_score(truth: &DiGraph, inferred: &DiGraph) -> f64 {
        let tp = inferred
            .edges()
            .filter(|&(u, v)| truth.has_edge(u, v))
            .count();
        let fp = inferred.edge_count() - tp;
        let fn_ = truth.edge_count() - tp;
        if 2 * tp + fp + fn_ == 0 {
            return 0.0;
        }
        2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
    }

    #[test]
    fn chain_topology_recall_is_high() {
        // Final statuses cannot identify edge *direction* within a pair
        // (the likelihood gain of j as parent of i equals that of i as
        // parent of j), so on a one-directional chain TENDS recovers the
        // influence pairs in both directions: recall ≈ 1, precision ≈ ½.
        let truth =
            DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let statuses = observe(&truth, 0.6, 0.2, 600, 101);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let tp = result
            .graph
            .edges()
            .filter(|&(u, v)| truth.has_edge(u, v))
            .count();
        let recall = tp as f64 / truth.edge_count() as f64;
        assert!(recall > 0.85, "recall {recall} too low");
        let f = f_score(&truth, &result.graph);
        assert!(f > 0.55, "F-score {f} too low; inferred {:?}", result.graph);
    }

    #[test]
    fn recovers_reciprocal_chain_exactly() {
        // With mutual influence edges the direction ambiguity vanishes and
        // reconstruction should be near-perfect.
        let mut edges = Vec::new();
        for i in 0..7u32 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        let truth = DiGraph::from_edges(8, &edges);
        let statuses = observe(&truth, 0.6, 0.2, 600, 108);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let f = f_score(&truth, &result.graph);
        assert!(
            f > 0.85,
            "F-score {f}; inferred {:?}",
            result.graph.edge_vec()
        );
    }

    #[test]
    fn recovers_star_topology() {
        // Hub 0 influences 6 leaves.
        let edges: Vec<(NodeId, NodeId)> = (1..7).map(|i| (0, i)).collect();
        let truth = DiGraph::from_edges(7, &edges);
        let statuses = observe(&truth, 0.5, 0.15, 600, 102);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let f = f_score(&truth, &result.graph);
        assert!(f > 0.6, "F-score {f} too low");
    }

    #[test]
    fn empty_network_stays_mostly_empty() {
        // No edges: all statuses are independent seed draws, so the
        // inferred topology must be (nearly) empty.
        let truth = DiGraph::empty(12);
        let statuses = observe(&truth, 0.5, 0.2, 400, 103);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        assert!(
            result.graph.edge_count() <= 2,
            "spurious edges: {:?}",
            result.graph.edge_vec()
        );
    }

    #[test]
    fn fixed_threshold_is_respected() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 104);
        let cfg = TendsConfig {
            threshold: ThresholdMode::Fixed(10.0), // absurdly high: prunes everything
            ..Default::default()
        };
        let result = Tends::with_config(cfg)
            .reconstruct(&statuses)
            .expect("search fits");
        assert_eq!(result.tau, 10.0);
        assert_eq!(result.graph.edge_count(), 0);
    }

    #[test]
    fn scaled_threshold_scales_auto_tau() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let statuses = observe(&truth, 0.5, 0.2, 200, 105);
        let auto = Tends::new().reconstruct(&statuses).expect("search fits");
        let scaled = Tends::with_config(TendsConfig {
            threshold: ThresholdMode::ScaledAuto(2.0),
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        assert!((scaled.tau - 2.0 * auto.tau).abs() < 1e-12);
        assert!((scaled.kmeans.tau - auto.kmeans.tau).abs() < 1e-12);
    }

    #[test]
    fn global_score_is_sum_of_local_scores() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5)]);
        let statuses = observe(&truth, 0.4, 0.2, 300, 106);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        let sum: f64 = result.node_results.iter().map(|r| r.score).sum();
        assert!((result.global_score - sum).abs() < 1e-9);
    }

    #[test]
    fn parallel_search_matches_sequential() {
        let truth = DiGraph::from_edges(30, &{
            let mut e = Vec::new();
            for i in 0..29u32 {
                e.push((i, i + 1));
                e.push((i + 1, i));
            }
            e
        });
        let statuses = observe(&truth, 0.4, 0.15, 200, 109);
        let seq = Tends::new().reconstruct(&statuses).expect("search fits");
        let par = Tends::with_config(TendsConfig {
            threads: 4,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        let par_all = Tends::with_config(TendsConfig {
            threads: 0,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits");
        assert_eq!(seq.graph, par.graph);
        assert_eq!(seq.graph, par_all.graph);
        assert_eq!(seq.global_score, par.global_score);
    }

    #[test]
    fn symmetrize_policy_makes_graph_reciprocal() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 110);
        let cfg = TendsConfig {
            direction: DirectionPolicy::Symmetrize,
            ..Default::default()
        };
        let g = Tends::with_config(cfg)
            .reconstruct(&statuses)
            .expect("search fits")
            .graph;
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "({u},{v}) not reciprocal");
        }
    }

    #[test]
    fn mutual_only_is_a_subset_of_as_is() {
        let truth =
            DiGraph::from_edges(8, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (4, 5), (6, 7)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 111);
        let as_is = Tends::new()
            .reconstruct(&statuses)
            .expect("search fits")
            .graph;
        let mutual = Tends::with_config(TendsConfig {
            direction: DirectionPolicy::MutualOnly,
            ..Default::default()
        })
        .reconstruct(&statuses)
        .expect("search fits")
        .graph;
        assert!(mutual.edge_count() <= as_is.edge_count());
        for (u, v) in mutual.edges() {
            assert!(as_is.has_edge(u, v));
            assert!(
                mutual.has_edge(v, u),
                "MutualOnly output must be reciprocal"
            );
        }
    }

    #[test]
    fn observed_reconstruction_matches_plain_and_populates_recorder() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let statuses = observe(&truth, 0.5, 0.2, 300, 112);
        let plain = Tends::new().reconstruct(&statuses).expect("search fits");
        let rec = Recorder::new();
        let observed = Tends::new()
            .reconstruct_observed(&statuses, &rec)
            .expect("search fits");
        assert_eq!(plain.graph, observed.graph);
        assert_eq!(
            plain.global_score.to_bits(),
            observed.global_score.to_bits()
        );

        let snap = rec.snapshot();
        let names: Vec<_> = snap.phases.iter().map(|(n, _)| *n).collect();
        for phase in [
            "status_columns",
            "correlation_matrix",
            "threshold",
            "candidate_pruning",
            "parent_search",
            "direction",
        ] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        assert!(snap.counters["combinations_scored"] > 0);
        assert_eq!(
            snap.counters["combinations_scored"],
            observed.total_evaluations() as u64
        );
        assert_eq!(snap.values["tau"], observed.tau);
        let hist = &snap.histograms["candidate_set_size"];
        assert_eq!(hist.iter().sum::<u64>(), 6, "one histogram entry per node");
        assert!(snap.worker_chunks.contains_key("parent_search"));
        assert!(snap.counters["workspace_refinements"] > 0);
        assert!(snap.counters["workspace_rebases"] > 0);
        assert!(
            snap.counters["score_cache_hits"] > 0,
            "greedy rounds must reuse scores memoized during enumeration"
        );
        assert_eq!(
            snap.counters["score_cache_hits"] + snap.counters["score_cache_misses"],
            snap.counters["combinations_scored"],
            "every evaluation is exactly one cache hit or miss"
        );
        assert!(
            snap.counters["workspace_refinements"] < snap.counters["combinations_scored"],
            "cache hits must skip workspace refinements ({} vs {})",
            snap.counters["workspace_refinements"],
            snap.counters["combinations_scored"]
        );
    }

    #[test]
    fn result_accessors() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let statuses = observe(&truth, 0.5, 0.2, 150, 107);
        let result = Tends::new().reconstruct(&statuses).expect("search fits");
        assert_eq!(result.node_results.len(), 5);
        assert!(result.total_evaluations() >= 5);
        assert!(result.mean_candidates() >= 0.0);
    }
}
