#![warn(missing_docs)]
//! # diffnet-tends
//!
//! TENDS — *Statistical Estimation of Diffusion Network Topologies* (Han,
//! Tian, Zhang, Han, Huang, Gao; ICDE 2020) — reconstructs the edge set of
//! a hidden diffusion network from nothing but the **final infection
//! statuses** of its nodes across `β` historical diffusion processes: no
//! infection timestamps, no diffusion sources, no prior on the edge count.
//!
//! The pipeline (paper §IV):
//!
//! 1. **Pairwise pruning** — score every node pair with the *infection
//!    mutual information* ([`imi`]), which rewards concordant infection
//!    statuses and penalizes discordant ones; cluster the non-negative
//!    values with a 2-means whose first centroid is pinned at 0
//!    ([`kmeans`]) and keep, for each node, only the candidates above the
//!    resulting threshold `τ`.
//! 2. **Local scoring** — evaluate candidate parent sets with the
//!    decomposable criterion `g(v_i, F_i) = log₂ L(v_i, F_i) − ½ Σ_j
//!    log₂(N_ij + 1)` ([`score`]), an MDL-style balance of likelihood and
//!    statistical error whose maximizer is a weakly consistent estimator
//!    of the true parent set.
//! 3. **Greedy search** — expand each node's parent set with the
//!    best-scoring candidate combinations, bounded by Theorem 2's
//!    `|F_i| ≤ log₂(φ_{F_i} + δ_i)` ([`search`]).
//!
//! The top-level entry point is [`Tends::reconstruct`]:
//!
//! ```
//! use diffnet_graph::DiGraph;
//! use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
//! use diffnet_tends::Tends;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let mut rng = StdRng::seed_from_u64(1);
//! let probs = EdgeProbs::gaussian(&truth, 0.4, 0.05, &mut rng);
//! let obs = IndependentCascade::new(&truth, &probs)
//!     .observe(IcConfig { initial_ratio: 0.2, num_processes: 300 }, &mut rng);
//!
//! let inferred = Tends::new()
//!     .reconstruct(&obs.statuses)
//!     .expect("default search fits")
//!     .graph;
//! assert_eq!(inferred.node_count(), truth.node_count());
//! ```

pub mod ablation;
mod algorithm;
pub mod checkpoint;
pub mod estimate;
pub mod imi;
pub mod kmeans;
pub mod parallel;
pub mod score;
pub mod search;
pub mod stream;

pub use algorithm::{
    DirectionPolicy, NodeError, PartialReconstruction, RobustOptions, Tends, TendsConfig,
    TendsResult, ThresholdMode,
};
pub use checkpoint::{Checkpoint, CheckpointEntry, CheckpointError};
pub use estimate::{
    estimate_propagation_probabilities, estimate_propagation_probabilities_from_columns,
    EstimateConfig, PropagationEstimate,
};
pub use imi::{CorrelationMatrix, CorrelationMeasure, PairStats};
pub use kmeans::{pinned_two_means, PinnedKmeans};
pub use score::ScoreCacheStats;
pub use search::{
    CountSource, GreedyStrategy, JointTable, SearchError, SearchParams, SearchScratch, SearchStats,
};
pub use stream::{plan_shards, Shard, SparseCandidates};
