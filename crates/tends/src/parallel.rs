//! Work-stealing parallel execution for the TENDS hot paths.
//!
//! Both parallel hot paths — the pairwise correlation matrix and the
//! per-node parent search — are embarrassingly parallel over an index
//! range, but with *wildly* uneven per-index cost: a hub node's parent
//! search can cost orders of magnitude more than a leaf's, and row `i` of
//! the upper-triangular correlation loop does `n − i − 1` cell
//! computations. Static range splitting therefore leaves threads idle;
//! instead, workers repeatedly claim small chunks from a shared atomic
//! counter ([`WorkQueue`]) until the range is drained.
//!
//! Determinism: [`run_indexed`] requires the work function to be a pure
//! function of its index (plus shared read-only captures). Results are
//! written into a slot per index, so the output is identical regardless of
//! thread count or claim interleaving — the property the
//! `parallel_search_matches_sequential` and correlation determinism tests
//! pin down.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "all available cores", and the
/// result is clamped to `[1, work_items]` so tiny workloads don't spawn
/// idle threads.
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

/// A shared claim counter over `0..total`: each [`claim`](Self::claim)
/// atomically hands out the next chunk of indices.
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl WorkQueue {
    /// A queue over `0..total` handing out chunks of `chunk` indices.
    pub fn new(total: usize, chunk: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` once the range is drained.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }
}

/// Computes `work(state, i)` for every `i` in `0..total` on `threads`
/// workers with work-stealing chunk claiming, returning the results in
/// index order.
///
/// Each worker owns one `state` built by `init` (scratch space such as a
/// counting workspace); `work` must be deterministic given its index, which
/// makes the output independent of the thread count.
pub fn run_indexed<T, S, I, W>(
    total: usize,
    chunk: usize,
    threads: usize,
    init: I,
    work: W,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let threads = resolve_threads(threads, total);
    if threads <= 1 {
        let mut state = init();
        return (0..total).map(|i| work(&mut state, i)).collect();
    }
    let queue = WorkQueue::new(total, chunk);
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    while let Some(range) = queue.claim() {
                        for i in range {
                            local.push((i, work(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (i, value) in worker.join().expect("worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every index claimed once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 0), 1);
        assert!(resolve_threads(0, 1_000_000) >= 1);
    }

    #[test]
    fn work_queue_drains_exactly_once() {
        let q = WorkQueue::new(103, 7);
        let mut seen = [false; 103];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_indexed_is_deterministic_and_ordered() {
        let expect: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        for threads in [1, 2, 4, 0] {
            let inits = AtomicUsize::new(0);
            let got = run_indexed(
                500,
                3,
                threads,
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, i| (i as u64) * (i as u64),
            );
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn run_indexed_empty_range() {
        let got: Vec<u8> = run_indexed(0, 8, 4, || (), |_, _| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Sequential path: one state, mutated across all indices.
        let got = run_indexed(
            5,
            1,
            1,
            || 0usize,
            |acc, _| {
                *acc += 1;
                *acc
            },
        );
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }
}
