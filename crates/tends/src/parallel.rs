//! Work-stealing parallel execution for the TENDS hot paths.
//!
//! Both parallel hot paths — the pairwise correlation matrix and the
//! per-node parent search — are embarrassingly parallel over an index
//! range, but with *wildly* uneven per-index cost: a hub node's parent
//! search can cost orders of magnitude more than a leaf's, and row `i` of
//! the upper-triangular correlation loop does `n − i − 1` cell
//! computations. Static range splitting therefore leaves threads idle;
//! instead, workers repeatedly claim small chunks from a shared atomic
//! counter ([`WorkQueue`]) until the range is drained.
//!
//! Determinism: [`run_indexed`] requires the work function to be a pure
//! function of its index (plus shared read-only captures). Results are
//! written into a slot per index, so the output is identical regardless of
//! thread count or claim interleaving — the property the
//! `parallel_search_matches_sequential` and correlation determinism tests
//! pin down.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "all available cores", and the
/// result is clamped to `[1, work_items]` so tiny workloads don't spawn
/// idle threads.
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

/// A shared claim counter over `0..total`: each [`claim`](Self::claim)
/// atomically hands out the next chunk of indices.
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl WorkQueue {
    /// A queue over `0..total` handing out chunks of `chunk` indices.
    pub fn new(total: usize, chunk: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` once the range is drained.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }
}

/// What one [`run_indexed_stats`] invocation did, per worker.
///
/// Worker order is the spawn order of the pool's threads; which *indices*
/// each worker claimed depends on scheduling, so everything here except
/// sums over all workers is nondeterministic. Observability consumers put
/// per-worker breakdowns in runtime-only report sections and only treat
/// aggregates (e.g. summed workspace counters) as reproducible.
#[derive(Clone, Debug)]
pub struct PoolStats<S> {
    /// Number of workers that ran (1 for the sequential path).
    pub threads: usize,
    /// Chunks each worker claimed from the shared queue.
    pub chunks_per_worker: Vec<u64>,
    /// Each worker's final state, in worker order.
    pub states: Vec<S>,
}

/// Computes `work(state, i)` for every `i` in `0..total` on `threads`
/// workers with work-stealing chunk claiming, returning the results in
/// index order.
///
/// Each worker owns one `state` built by `init` (scratch space such as a
/// counting workspace); `work` must be deterministic given its index, which
/// makes the output independent of the thread count.
pub fn run_indexed<T, S, I, W>(
    total: usize,
    chunk: usize,
    threads: usize,
    init: I,
    work: W,
) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_stats(total, chunk, threads, init, work).0
}

/// [`run_indexed`] that additionally returns [`PoolStats`]: per-worker
/// chunk-claim counts and the workers' final states, so callers can report
/// pool utilization and harvest counters accumulated in the scratch state.
pub fn run_indexed_stats<T, S, I, W>(
    total: usize,
    chunk: usize,
    threads: usize,
    init: I,
    work: W,
) -> (Vec<T>, PoolStats<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let threads = resolve_threads(threads, total);
    let chunk = chunk.max(1);
    if threads <= 1 {
        let mut state = init();
        let results = (0..total).map(|i| work(&mut state, i)).collect();
        let stats = PoolStats {
            threads: 1,
            chunks_per_worker: vec![total.div_ceil(chunk) as u64],
            states: vec![state],
        };
        return (results, stats);
    }
    let queue = WorkQueue::new(total, chunk);
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut chunks_per_worker = Vec::with_capacity(threads);
    let mut states = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut chunks = 0u64;
                    while let Some(range) = queue.claim() {
                        chunks += 1;
                        for i in range {
                            local.push((i, work(&mut state, i)));
                        }
                    }
                    (local, chunks, state)
                })
            })
            .collect();
        for worker in workers {
            let (local, chunks, state) = worker.join().expect("worker panicked");
            for (i, value) in local {
                slots[i] = Some(value);
            }
            chunks_per_worker.push(chunks);
            states.push(state);
        }
    });
    let results = slots
        .into_iter()
        .map(|v| v.expect("every index claimed once"))
        .collect();
    let stats = PoolStats {
        threads,
        chunks_per_worker,
        states,
    };
    (results, stats)
}

/// Splits `0..costs.len()` into at most `target_chunks` contiguous ranges
/// of roughly equal *total cost*, for cost-aware scheduling.
///
/// Uniform chunking serializes on expensive indices: one chunk holding a
/// hub node's parent search (or the dense top-left tiles of the pair
/// triangle) dominates the wall clock while other workers sit idle.
/// Weighting chunk boundaries by a per-index cost estimate keeps every
/// claim roughly the same size in *work*, not in indices.
///
/// Each chunk's quota is `remaining_cost / remaining_chunks`, recomputed as
/// chunks close, so a single huge index early on doesn't starve the tail
/// into one giant chunk. All-zero costs fall back to uniform splitting.
/// The boundaries are a pure function of `costs` and `target_chunks`.
pub fn cost_chunks(costs: &[u64], target_chunks: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let target_chunks = target_chunks.clamp(1, n);
    let total: u64 = costs.iter().sum();
    if total == 0 {
        let chunk = n.div_ceil(target_chunks);
        return (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect();
    }
    let mut out = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut remaining = total;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        let chunks_left = (target_chunks - out.len()) as u64;
        if chunks_left > 1 && acc >= remaining.div_ceil(chunks_left) {
            out.push(start..i + 1);
            start = i + 1;
            remaining -= acc;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// [`run_indexed`]'s cost-aware sibling: computes `work(state, i)` for every
/// `i` in `0..costs.len()`, scheduling cost-balanced chunks (see
/// [`cost_chunks`]) instead of fixed-size ones.
pub fn run_weighted<T, S, I, W>(
    costs: &[u64],
    chunks_per_thread: usize,
    threads: usize,
    init: I,
    work: W,
) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    run_weighted_stats(costs, chunks_per_thread, threads, init, work).0
}

/// [`run_weighted`] that additionally returns [`PoolStats`].
///
/// Chunk boundaries are `cost_chunks(costs, threads × chunks_per_thread)`;
/// several chunks per thread keep the work-stealing slack that absorbs cost
/// *estimate* errors. Results land in per-index slots, so the output is
/// bit-identical at every thread count, exactly like [`run_indexed_stats`].
pub fn run_weighted_stats<T, S, I, W>(
    costs: &[u64],
    chunks_per_thread: usize,
    threads: usize,
    init: I,
    work: W,
) -> (Vec<T>, PoolStats<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let total = costs.len();
    let threads = resolve_threads(threads, total);
    let chunks = cost_chunks(costs, threads * chunks_per_thread.max(1));
    if threads <= 1 {
        let mut state = init();
        let results = (0..total).map(|i| work(&mut state, i)).collect();
        let stats = PoolStats {
            threads: 1,
            chunks_per_worker: vec![chunks.len() as u64],
            states: vec![state],
        };
        return (results, stats);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut chunks_per_worker = Vec::with_capacity(threads);
    let mut states = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = chunks.get(c) else { break };
                        claimed += 1;
                        for i in range.clone() {
                            local.push((i, work(&mut state, i)));
                        }
                    }
                    (local, claimed, state)
                })
            })
            .collect();
        for worker in workers {
            let (local, claimed, state) = worker.join().expect("worker panicked");
            for (i, value) in local {
                slots[i] = Some(value);
            }
            chunks_per_worker.push(claimed);
            states.push(state);
        }
    });
    let results = slots
        .into_iter()
        .map(|v| v.expect("every index claimed once"))
        .collect();
    let stats = PoolStats {
        threads,
        chunks_per_worker,
        states,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 0), 1);
        assert!(resolve_threads(0, 1_000_000) >= 1);
    }

    #[test]
    fn work_queue_drains_exactly_once() {
        let q = WorkQueue::new(103, 7);
        let mut seen = [false; 103];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_indexed_is_deterministic_and_ordered() {
        let expect: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        for threads in [1, 2, 4, 0] {
            let inits = AtomicUsize::new(0);
            let got = run_indexed(
                500,
                3,
                threads,
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, i| (i as u64) * (i as u64),
            );
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn run_indexed_empty_range() {
        let got: Vec<u8> = run_indexed(0, 8, 4, || (), |_, _| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn pool_stats_account_for_every_chunk_and_state() {
        for threads in [1usize, 3] {
            let (got, stats) = run_indexed_stats(
                103,
                7,
                threads,
                || 0u64,
                |count, i| {
                    *count += 1;
                    i
                },
            );
            assert_eq!(got, (0..103).collect::<Vec<_>>());
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.chunks_per_worker.len(), threads);
            assert_eq!(stats.states.len(), threads);
            // Every chunk claim and every index lands on exactly one worker.
            assert_eq!(
                stats.chunks_per_worker.iter().sum::<u64>(),
                103u64.div_ceil(7)
            );
            assert_eq!(stats.states.iter().sum::<u64>(), 103);
        }
    }

    #[test]
    fn cost_chunks_cover_range_exactly_once() {
        let cases: &[(&[u64], usize)] = &[
            (&[1, 1, 1, 1, 1], 2),
            (&[100, 1, 1, 1, 1, 1, 1, 1], 4),
            (&[0, 0, 0, 0], 3),
            (&[5], 8),
            (&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 4),
            (&[0, 0, 100, 0, 0], 2),
        ];
        for &(costs, target) in cases {
            let chunks = cost_chunks(costs, target);
            assert!(chunks.len() <= target.max(1), "{costs:?} target {target}");
            let mut next = 0usize;
            for r in &chunks {
                assert_eq!(r.start, next, "gap in {chunks:?}");
                assert!(r.end > r.start, "empty chunk in {chunks:?}");
                next = r.end;
            }
            assert_eq!(next, costs.len(), "range not covered: {chunks:?}");
        }
        assert!(cost_chunks(&[], 4).is_empty());
    }

    #[test]
    fn cost_chunks_balance_uneven_costs() {
        // One hub (cost 90) among 9 leaves (cost 1 each), 3 chunks: the
        // hub must not drag half the leaves into its chunk.
        let costs = [90u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let chunks = cost_chunks(&costs, 3);
        assert_eq!(chunks[0], 0..1, "hub isolated in its own chunk");
        // Remaining leaves split roughly evenly.
        for r in &chunks[1..] {
            let w: u64 = costs[r.start..r.end].iter().sum();
            assert!(w <= 5, "tail chunk {r:?} carries {w}");
        }
    }

    #[test]
    fn run_weighted_is_deterministic_and_ordered() {
        let costs: Vec<u64> = (0..200u64).map(|i| i * i).collect();
        let expect: Vec<u64> = (0..200u64).map(|i| i + 7).collect();
        for threads in [1usize, 2, 4, 0] {
            let got = run_weighted(&costs, 4, threads, || (), |_, i| i as u64 + 7);
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn run_weighted_stats_account_for_chunks_and_states() {
        let costs = vec![1u64; 50];
        for threads in [1usize, 3] {
            let (got, stats) = run_weighted_stats(
                &costs,
                2,
                threads,
                || 0u64,
                |count, i| {
                    *count += 1;
                    i
                },
            );
            assert_eq!(got, (0..50).collect::<Vec<_>>());
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.chunks_per_worker.len(), threads);
            assert_eq!(stats.states.iter().sum::<u64>(), 50);
            let expected_chunks = cost_chunks(&costs, threads * 2).len() as u64;
            assert_eq!(stats.chunks_per_worker.iter().sum::<u64>(), expected_chunks);
        }
    }

    #[test]
    fn run_weighted_empty_range() {
        let got: Vec<u8> = run_weighted(&[], 4, 4, || (), |_, _| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Sequential path: one state, mutated across all indices.
        let got = run_indexed(
            5,
            1,
            1,
            || 0usize,
            |acc, _| {
                *acc += 1;
                *acc
            },
        );
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }
}
