//! Work-stealing parallel execution for the TENDS hot paths.
//!
//! Both parallel hot paths — the pairwise correlation matrix and the
//! per-node parent search — are embarrassingly parallel over an index
//! range, but with *wildly* uneven per-index cost: a hub node's parent
//! search can cost orders of magnitude more than a leaf's, and row `i` of
//! the upper-triangular correlation loop does `n − i − 1` cell
//! computations. Static range splitting therefore leaves threads idle;
//! instead, workers repeatedly claim small chunks from a shared atomic
//! counter ([`WorkQueue`]) until the range is drained.
//!
//! Determinism: [`run_indexed`] requires the work function to be a pure
//! function of its index (plus shared read-only captures). Results are
//! written into a slot per index, so the output is identical regardless of
//! thread count or claim interleaving — the property the
//! `parallel_search_matches_sequential` and correlation determinism tests
//! pin down.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "all available cores", and the
/// result is clamped to `[1, work_items]` so tiny workloads don't spawn
/// idle threads.
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

/// A shared claim counter over `0..total`: each [`claim`](Self::claim)
/// atomically hands out the next chunk of indices.
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl WorkQueue {
    /// A queue over `0..total` handing out chunks of `chunk` indices.
    pub fn new(total: usize, chunk: usize) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` once the range is drained.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }
}

/// What one [`run_indexed_stats`] invocation did, per worker.
///
/// Worker order is the spawn order of the pool's threads; which *indices*
/// each worker claimed depends on scheduling, so everything here except
/// sums over all workers is nondeterministic. Observability consumers put
/// per-worker breakdowns in runtime-only report sections and only treat
/// aggregates (e.g. summed workspace counters) as reproducible.
#[derive(Clone, Debug)]
pub struct PoolStats<S> {
    /// Number of workers that ran (1 for the sequential path).
    pub threads: usize,
    /// Chunks each worker claimed from the shared queue.
    pub chunks_per_worker: Vec<u64>,
    /// Each worker's final state, in worker order.
    pub states: Vec<S>,
}

/// Computes `work(state, i)` for every `i` in `0..total` on `threads`
/// workers with work-stealing chunk claiming, returning the results in
/// index order.
///
/// Each worker owns one `state` built by `init` (scratch space such as a
/// counting workspace); `work` must be deterministic given its index, which
/// makes the output independent of the thread count.
pub fn run_indexed<T, S, I, W>(
    total: usize,
    chunk: usize,
    threads: usize,
    init: I,
    work: W,
) -> Vec<T>
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_stats(total, chunk, threads, init, work).0
}

/// [`run_indexed`] that additionally returns [`PoolStats`]: per-worker
/// chunk-claim counts and the workers' final states, so callers can report
/// pool utilization and harvest counters accumulated in the scratch state.
pub fn run_indexed_stats<T, S, I, W>(
    total: usize,
    chunk: usize,
    threads: usize,
    init: I,
    work: W,
) -> (Vec<T>, PoolStats<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let threads = resolve_threads(threads, total);
    let chunk = chunk.max(1);
    if threads <= 1 {
        let mut state = init();
        let results = (0..total).map(|i| work(&mut state, i)).collect();
        let stats = PoolStats {
            threads: 1,
            chunks_per_worker: vec![total.div_ceil(chunk) as u64],
            states: vec![state],
        };
        return (results, stats);
    }
    let queue = WorkQueue::new(total, chunk);
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut chunks_per_worker = Vec::with_capacity(threads);
    let mut states = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut chunks = 0u64;
                    while let Some(range) = queue.claim() {
                        chunks += 1;
                        for i in range {
                            local.push((i, work(&mut state, i)));
                        }
                    }
                    (local, chunks, state)
                })
            })
            .collect();
        for worker in workers {
            let (local, chunks, state) = worker.join().expect("worker panicked");
            for (i, value) in local {
                slots[i] = Some(value);
            }
            chunks_per_worker.push(chunks);
            states.push(state);
        }
    });
    let results = slots
        .into_iter()
        .map(|v| v.expect("every index claimed once"))
        .collect();
    let stats = PoolStats {
        threads,
        chunks_per_worker,
        states,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 0), 1);
        assert!(resolve_threads(0, 1_000_000) >= 1);
    }

    #[test]
    fn work_queue_drains_exactly_once() {
        let q = WorkQueue::new(103, 7);
        let mut seen = [false; 103];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_indexed_is_deterministic_and_ordered() {
        let expect: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        for threads in [1, 2, 4, 0] {
            let inits = AtomicUsize::new(0);
            let got = run_indexed(
                500,
                3,
                threads,
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, i| (i as u64) * (i as u64),
            );
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn run_indexed_empty_range() {
        let got: Vec<u8> = run_indexed(0, 8, 4, || (), |_, _| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn pool_stats_account_for_every_chunk_and_state() {
        for threads in [1usize, 3] {
            let (got, stats) = run_indexed_stats(
                103,
                7,
                threads,
                || 0u64,
                |count, i| {
                    *count += 1;
                    i
                },
            );
            assert_eq!(got, (0..103).collect::<Vec<_>>());
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.chunks_per_worker.len(), threads);
            assert_eq!(stats.states.len(), threads);
            // Every chunk claim and every index lands on exactly one worker.
            assert_eq!(
                stats.chunks_per_worker.iter().sum::<u64>(),
                103u64.div_ceil(7)
            );
            assert_eq!(stats.states.iter().sum::<u64>(), 103);
        }
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Sequential path: one state, mutated across all indices.
        let got = run_indexed(
            5,
            1,
            1,
            || 0usize,
            |acc, _| {
                *acc += 1;
                *acc
            },
        );
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }
}
