//! Property-based tests for the simulation substrate.

use diffnet_graph::NodeId;
use diffnet_simulate::{
    io, DiffusionRecord, EdgeProbs, IcConfig, IndependentCascade, LinearThreshold, ObservationSet,
    StatusMatrix, UNINFECTED,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn status_matrix(
    beta: std::ops::Range<usize>,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = StatusMatrix> {
    (beta, n).prop_flat_map(|(b, n)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), b)
            .prop_map(|rows| StatusMatrix::from_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Pair counts always partition β, for every pair.
    #[test]
    fn pair_counts_partition(m in status_matrix(0..50, 1..12)) {
        let cols = m.columns();
        let n = m.num_nodes() as u32;
        for i in 0..n {
            for j in 0..n {
                let pc = cols.pair_counts(i, j);
                prop_assert_eq!(pc.total(), m.num_processes() as u64);
            }
        }
    }

    // Column ones equal row-wise infection counts.
    #[test]
    fn column_ones_match_infection_counts(m in status_matrix(0..60, 1..10)) {
        let cols = m.columns();
        for i in 0..m.num_nodes() as u32 {
            prop_assert_eq!(cols.ones(i), m.infection_count(i) as u64);
        }
    }

    // Status-matrix serialization round-trips arbitrary matrices.
    #[test]
    fn status_io_round_trip(m in status_matrix(0..30, 1..20)) {
        let mut buf = Vec::new();
        io::write_status_matrix(&m, &mut buf).expect("write");
        let back = io::read_status_matrix(buf.as_slice()).expect("read");
        prop_assert_eq!(back, m);
    }

    // Observation serialization round-trips arbitrary consistent records.
    #[test]
    fn observation_io_round_trip(
        raw in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u32..8), 1..8),
            0..6,
        )
    ) {
        // Normalize to a consistent record set: times Some(t) = infected.
        let n = raw.first().map_or(1, |r| r.len());
        let records: Vec<DiffusionRecord> = raw
            .into_iter()
            .map(|r| {
                let mut times: Vec<u32> = r
                    .into_iter()
                    .chain(std::iter::repeat(None))
                    .take(n)
                    .map(|t| t.map_or(UNINFECTED, |v| v))
                    .collect();
                // Ensure at least one seed if anything is infected.
                let mut sources: Vec<NodeId> = times
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t == 0)
                    .map(|(i, _)| i as NodeId)
                    .collect();
                if sources.is_empty() {
                    if let Some(first_infected) =
                        times.iter().position(|&t| t != UNINFECTED)
                    {
                        times[first_infected] = 0;
                        sources.push(first_infected as NodeId);
                    }
                }
                DiffusionRecord { sources, times }
            })
            .collect();
        let mut statuses = StatusMatrix::new(records.len(), n);
        for (l, rec) in records.iter().enumerate() {
            for i in 0..n as NodeId {
                if rec.infected(i) {
                    statuses.set(l, i);
                }
            }
        }
        let obs = ObservationSet::new(statuses, records);
        let mut buf = Vec::new();
        io::write_observations(&obs, &mut buf).expect("write");
        let back = io::read_observations(buf.as_slice()).expect("read");
        prop_assert_eq!(back.records, obs.records);
        prop_assert_eq!(back.statuses, obs.statuses);
    }

    // IC and LT runs agree with their own records on any ER graph.
    #[test]
    fn simulators_are_internally_consistent(
        seed in 0u64..500,
        p in 0.05f64..0.95,
        lt in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = diffnet_graph::generators::erdos_renyi_gnm(25, 80, &mut rng);
        let probs = EdgeProbs::constant(&g, p);
        let cfg = IcConfig { initial_ratio: 0.12, num_processes: 4 };
        let obs = if lt {
            LinearThreshold::new(&g, &probs).observe(cfg, &mut rng)
        } else {
            IndependentCascade::new(&g, &probs).observe(cfg, &mut rng)
        };
        for (l, rec) in obs.records.iter().enumerate() {
            prop_assert_eq!(rec.sources.len(), 3, "⌈0.12·25⌉");
            for i in 0..25u32 {
                prop_assert_eq!(rec.infected(i), obs.statuses.get(l, i as NodeId));
                let t = rec.times[i as usize];
                if t != UNINFECTED && t > 0 {
                    // Infected non-seed must have an infected in-neighbor
                    // strictly earlier.
                    let ok = g.in_neighbors(i).iter()
                        .any(|&j| {
                            let tj = rec.times[j as usize];
                            tj != UNINFECTED && tj < t
                        });
                    prop_assert!(ok, "node {} at {} unexplained", i, t);
                }
            }
        }
    }

    // The cascade view is consistent with times and sorted by round.
    #[test]
    fn cascade_view_sorted(m in status_matrix(1..10, 1..8), seed in 0u64..100) {
        let _ = m; // matrix only used for shape variability
        let mut rng = StdRng::seed_from_u64(seed);
        let g = diffnet_graph::generators::erdos_renyi_gnm(10, 30, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.5);
        let rec = IndependentCascade::new(&g, &probs).run_once(&[0, 3], &mut rng);
        let cascade = rec.cascade();
        prop_assert!(cascade.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert_eq!(cascade.len(), rec.infected_count());
    }
}
