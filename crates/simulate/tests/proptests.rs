//! Property-based tests for the simulation substrate.

use diffnet_graph::NodeId;
use diffnet_simulate::{
    io, DiffusionRecord, EdgeProbs, IcConfig, IndependentCascade, Kernels, LinearThreshold,
    ObservationSet, SimdMode, StatusMatrix, UNINFECTED,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn status_matrix(
    beta: std::ops::Range<usize>,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = StatusMatrix> {
    (beta, n).prop_flat_map(|(b, n)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), b)
            .prop_map(|rows| StatusMatrix::from_rows(&rows))
    })
}

/// Status matrices whose process counts stress every SIMD tail shape:
/// `1..=65` covers sub-word, exact-word, and word-plus-one columns; 127
/// and 255 end mid-word past the first; 2051 spans 33 words — multiple
/// AVX2 lane groups plus a scalar tail.
fn simd_matrix() -> impl Strategy<Value = StatusMatrix> {
    let beta = (0usize..68).prop_map(|i| match i {
        0..=64 => i + 1,
        65 => 127,
        66 => 255,
        _ => 2051,
    });
    (beta, 1usize..10).prop_flat_map(|(b, n)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), b)
            .prop_map(|rows| StatusMatrix::from_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Pair counts always partition β, for every pair.
    #[test]
    fn pair_counts_partition(m in status_matrix(0..50, 1..12)) {
        let cols = m.columns();
        let n = m.num_nodes() as u32;
        for i in 0..n {
            for j in 0..n {
                let pc = cols.pair_counts(i, j);
                prop_assert_eq!(pc.total(), m.num_processes() as u64);
            }
        }
    }

    // Column ones equal row-wise infection counts.
    #[test]
    fn column_ones_match_infection_counts(m in status_matrix(0..60, 1..10)) {
        let cols = m.columns();
        for i in 0..m.num_nodes() as u32 {
            prop_assert_eq!(cols.ones(i), m.infection_count(i) as u64);
        }
    }

    // Status-matrix serialization round-trips arbitrary matrices.
    #[test]
    fn status_io_round_trip(m in status_matrix(0..30, 1..20)) {
        let mut buf = Vec::new();
        io::write_status_matrix(&m, &mut buf).expect("write");
        let back = io::read_status_matrix(buf.as_slice()).expect("read");
        prop_assert_eq!(back, m);
    }

    // Observation serialization round-trips arbitrary consistent records.
    #[test]
    fn observation_io_round_trip(
        raw in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u32..8), 1..8),
            0..6,
        )
    ) {
        // Normalize to a consistent record set: times Some(t) = infected.
        let n = raw.first().map_or(1, |r| r.len());
        let records: Vec<DiffusionRecord> = raw
            .into_iter()
            .map(|r| {
                let mut times: Vec<u32> = r
                    .into_iter()
                    .chain(std::iter::repeat(None))
                    .take(n)
                    .map(|t| t.map_or(UNINFECTED, |v| v))
                    .collect();
                // Ensure at least one seed if anything is infected.
                let mut sources: Vec<NodeId> = times
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t == 0)
                    .map(|(i, _)| i as NodeId)
                    .collect();
                if sources.is_empty() {
                    if let Some(first_infected) =
                        times.iter().position(|&t| t != UNINFECTED)
                    {
                        times[first_infected] = 0;
                        sources.push(first_infected as NodeId);
                    }
                }
                DiffusionRecord { sources, times }
            })
            .collect();
        let mut statuses = StatusMatrix::new(records.len(), n);
        for (l, rec) in records.iter().enumerate() {
            for i in 0..n as NodeId {
                if rec.infected(i) {
                    statuses.set(l, i);
                }
            }
        }
        let obs = ObservationSet::new(statuses, records);
        let mut buf = Vec::new();
        io::write_observations(&obs, &mut buf).expect("write");
        let back = io::read_observations(buf.as_slice()).expect("read");
        prop_assert_eq!(back.records, obs.records);
        prop_assert_eq!(back.statuses, obs.statuses);
    }

    // IC and LT runs agree with their own records on any ER graph.
    #[test]
    fn simulators_are_internally_consistent(
        seed in 0u64..500,
        p in 0.05f64..0.95,
        lt in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = diffnet_graph::generators::erdos_renyi_gnm(25, 80, &mut rng);
        let probs = EdgeProbs::constant(&g, p);
        let cfg = IcConfig { initial_ratio: 0.12, num_processes: 4 };
        let obs = if lt {
            LinearThreshold::new(&g, &probs).observe(cfg, &mut rng)
        } else {
            IndependentCascade::new(&g, &probs).observe(cfg, &mut rng)
        };
        for (l, rec) in obs.records.iter().enumerate() {
            prop_assert_eq!(rec.sources.len(), 3, "⌈0.12·25⌉");
            for i in 0..25u32 {
                prop_assert_eq!(rec.infected(i), obs.statuses.get(l, i as NodeId));
                let t = rec.times[i as usize];
                if t != UNINFECTED && t > 0 {
                    // Infected non-seed must have an infected in-neighbor
                    // strictly earlier.
                    let ok = g.in_neighbors(i).iter()
                        .any(|&j| {
                            let tj = rec.times[j as usize];
                            tj != UNINFECTED && tj < t
                        });
                    prop_assert!(ok, "node {} at {} unexplained", i, t);
                }
            }
        }
    }

    // Every forced dispatch tier computes bit-identical results to the
    // portable scalar kernels on arbitrary word slices. Unavailable tiers
    // degrade (with a warning) to the best available one, so this passes
    // on any host; on AVX2 machines it exercises all three code paths.
    #[test]
    fn simd_tiers_match_scalar_kernels(
        (a, b, c) in (0usize..40).prop_flat_map(|len| {
            let w = || proptest::collection::vec(any::<u64>(), len);
            (w(), w(), w())
        })
    ) {
        let naive_pc = |s: &[u64]| s.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        let and: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        let and3: Vec<u64> = and.iter().zip(&c).map(|(x, y)| x & y).collect();
        for mode in [SimdMode::Auto, SimdMode::Avx2, SimdMode::Popcnt, SimdMode::Scalar] {
            let k = Kernels::for_mode(mode);
            prop_assert_eq!(k.popcount(&a), naive_pc(&a));
            prop_assert_eq!(k.and_popcount(&a, &b), naive_pc(&and));
            prop_assert_eq!(k.and_self_popcount(&a, &b), (naive_pc(&and), naive_pc(&a)));
            prop_assert_eq!(k.and3_popcount(&a, &b, &c), (naive_pc(&and), naive_pc(&and3)));
            let mut lo = a.clone();
            let mut hi = vec![0u64; a.len()];
            k.refine_masks(&mut lo, &mut hi, &b);
            let want_lo: Vec<u64> = a.iter().zip(&b).map(|(w, p)| w & !p).collect();
            prop_assert_eq!(&lo, &want_lo, "lo half, {} tier", k.dispatch());
            prop_assert_eq!(&hi, &and, "hi half, {} tier", k.dispatch());
        }
    }

    // Tiled pair counting emits exactly the upper triangle and matches the
    // per-pair scalar oracle for every tile size, including degenerate 1x1
    // tiles and tiles larger than the node count. β spans sub-word,
    // word-aligned, lane-crossing, and multi-lane column shapes.
    #[test]
    fn pair_counts_block_matches_oracle_at_any_tile(
        m in simd_matrix(),
        tile in (0usize..4).prop_map(|i| [1usize, 3, 7, 64][i]),
    ) {
        let cols = m.columns();
        let n = m.num_nodes();
        let ones: Vec<u64> = (0..n).map(|i| cols.ones(i as NodeId)).collect();
        let mut seen = Vec::new();
        let mut i0 = 0;
        while i0 < n {
            let mut j0 = i0;
            while j0 < n {
                cols.pair_counts_block(
                    i0..(i0 + tile).min(n),
                    j0..(j0 + tile).min(n),
                    &ones,
                    &mut |i, j, pc| seen.push((i, j, pc)),
                );
                j0 += tile;
            }
            i0 += tile;
        }
        prop_assert_eq!(seen.len(), n * n.saturating_sub(1) / 2);
        for (i, j, pc) in seen {
            prop_assert!(i < j);
            prop_assert_eq!(pc, cols.pair_counts(i, j), "pair ({}, {})", i, j);
        }
    }

    // The word-parallel combination tables (recursive, incremental, and
    // batched single-extension) all match the row-major scalar oracle.
    #[test]
    fn combo_tables_match_row_oracle(m in simd_matrix(), seed in 0u64..1000) {
        let n = m.num_nodes();
        if n < 2 {
            return Ok(());
        }
        let cols = m.columns();
        let child = (seed % n as u64) as NodeId;
        // Split the remaining nodes into a base set and extension set.
        let others: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != child).collect();
        let base: Vec<NodeId> = others.iter().copied().step_by(2).collect();
        let extras: Vec<NodeId> = others.iter().copied().skip(1).step_by(2).collect();

        let union: Vec<NodeId> = {
            let mut u = others.clone();
            u.sort_unstable();
            u
        };
        let oracle = m.combo_counts(child, &union).expect("within limit");
        let word_parallel = cols.combo_counts(child, &union).expect("within limit");
        prop_assert_eq!(word_parallel.as_slice(), oracle.as_slice());

        let mut ws = diffnet_simulate::CountsWorkspace::new();
        ws.set_base(&cols, &base).expect("within limit");
        prop_assert_eq!(
            ws.refined_counts(&cols, child, &extras).expect("within limit"),
            oracle.as_slice()
        );

        // Batched single extensions against per-extension oracles.
        let mut singles = Vec::new();
        ws.refined_counts_single_batch(&cols, child, &extras, |t, counts| {
            singles.push((t, counts.to_vec()));
        });
        prop_assert_eq!(singles.len(), extras.len());
        for (t, counts) in singles {
            let mut one = base.clone();
            one.push(extras[t]);
            one.sort_unstable();
            let want = m.combo_counts(child, &one).expect("within limit");
            prop_assert_eq!(counts, want, "extension {}", extras[t]);
        }
    }

    // The cascade view is consistent with times and sorted by round.
    #[test]
    fn cascade_view_sorted(m in status_matrix(1..10, 1..8), seed in 0u64..100) {
        let _ = m; // matrix only used for shape variability
        let mut rng = StdRng::seed_from_u64(seed);
        let g = diffnet_graph::generators::erdos_renyi_gnm(10, 30, &mut rng);
        let probs = EdgeProbs::constant(&g, 0.5);
        let rec = IndependentCascade::new(&g, &probs).run_once(&[0, 3], &mut rng);
        let cascade = rec.cascade();
        prop_assert!(cascade.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert_eq!(cascade.len(), rec.infected_count());
    }
}
