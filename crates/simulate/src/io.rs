//! On-disk formats for observations.
//!
//! * **Status matrix** — one line per diffusion process, `n` space-
//!   separated `0`/`1` digits; `#` lines are comments. This is the
//!   interchange format for status-only pipelines (all TENDS needs).
//! * **Observation set** — the status format plus, per process, a
//!   `sources:` line and a `times:` line (with `-` for never-infected), so
//!   cascade-based baselines can be replayed from disk too.

use crate::{DiffusionRecord, ObservationSet, StatusMatrix, UNINFECTED};
use diffnet_graph::NodeId;
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from observation parsing.
#[derive(Debug)]
pub enum ObservationIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ObservationIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservationIoError::Io(e) => write!(f, "observation I/O error: {e}"),
            ObservationIoError::Parse { line, message } => {
                write!(f, "observation parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ObservationIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObservationIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ObservationIoError {
    fn from(e: io::Error) -> Self {
        ObservationIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ObservationIoError {
    ObservationIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes a status matrix: one `0`/`1` row per process.
pub fn write_status_matrix<W: Write>(m: &StatusMatrix, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# diffnet status matrix: {} processes x {} nodes",
        m.num_processes(),
        m.num_nodes()
    )?;
    let mut line = String::with_capacity(2 * m.num_nodes());
    for l in 0..m.num_processes() {
        line.clear();
        for i in 0..m.num_nodes() as NodeId {
            if i > 0 {
                line.push(' ');
            }
            line.push(if m.get(l, i) { '1' } else { '0' });
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a status matrix written by [`write_status_matrix`].
pub fn read_status_matrix<R: Read>(r: R) -> Result<StatusMatrix, ObservationIoError> {
    let mut rows: Vec<Vec<bool>> = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let row: Result<Vec<bool>, _> = t
            .split_whitespace()
            .map(|tok| match tok {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(parse_err(idx + 1, format!("expected 0/1, got {other:?}"))),
            })
            .collect();
        let row = row?;
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(parse_err(
                    idx + 1,
                    format!("row has {} entries, expected {}", row.len(), first.len()),
                ));
            }
        }
        rows.push(row);
    }
    Ok(StatusMatrix::from_rows(&rows))
}

/// Saves a status matrix to a file.
pub fn save_status_matrix<P: AsRef<Path>>(m: &StatusMatrix, path: P) -> io::Result<()> {
    write_status_matrix(m, io::BufWriter::new(fs::File::create(path)?))
}

/// Loads a status matrix from a file.
pub fn load_status_matrix<P: AsRef<Path>>(path: P) -> Result<StatusMatrix, ObservationIoError> {
    read_status_matrix(fs::File::open(path)?)
}

/// Writes a full observation set: per process a `sources:` line and a
/// `times:` line (`-` = never infected).
pub fn write_observations<W: Write>(obs: &ObservationSet, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# diffnet observations: {} processes x {} nodes",
        obs.num_processes(),
        obs.num_nodes()
    )?;
    writeln!(w, "nodes: {}", obs.num_nodes())?;
    for rec in &obs.records {
        write!(w, "sources:")?;
        for &s in &rec.sources {
            write!(w, " {s}")?;
        }
        writeln!(w)?;
        write!(w, "times:")?;
        for &t in &rec.times {
            if t == UNINFECTED {
                write!(w, " -")?;
            } else {
                write!(w, " {t}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads an observation set written by [`write_observations`].
pub fn read_observations<R: Read>(r: R) -> Result<ObservationSet, ObservationIoError> {
    let mut n: Option<usize> = None;
    let mut records: Vec<DiffusionRecord> = Vec::new();
    let mut pending_sources: Option<Vec<NodeId>> = None;

    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(rest) = t.strip_prefix("nodes:") {
            n = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| parse_err(idx + 1, "invalid node count"))?,
            );
        } else if let Some(rest) = t.strip_prefix("sources:") {
            if pending_sources.is_some() {
                return Err(parse_err(idx + 1, "sources line without matching times"));
            }
            let sources: Result<Vec<NodeId>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<NodeId>()
                        .map_err(|_| parse_err(idx + 1, format!("invalid source {tok:?}")))
                })
                .collect();
            pending_sources = Some(sources?);
        } else if let Some(rest) = t.strip_prefix("times:") {
            let sources = pending_sources
                .take()
                .ok_or_else(|| parse_err(idx + 1, "times line without sources"))?;
            let times: Result<Vec<u32>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    if tok == "-" {
                        Ok(UNINFECTED)
                    } else {
                        tok.parse::<u32>()
                            .map_err(|_| parse_err(idx + 1, format!("invalid time {tok:?}")))
                    }
                })
                .collect();
            let times = times?;
            let expected = n.ok_or_else(|| parse_err(idx + 1, "missing nodes: header"))?;
            if times.len() != expected {
                return Err(parse_err(
                    idx + 1,
                    format!("expected {expected} times, got {}", times.len()),
                ));
            }
            records.push(DiffusionRecord { sources, times });
        } else {
            return Err(parse_err(idx + 1, format!("unrecognized line {t:?}")));
        }
    }
    if pending_sources.is_some() {
        return Err(parse_err(0, "trailing sources line without times"));
    }

    let n = n.unwrap_or(0);
    let mut statuses = StatusMatrix::new(records.len(), n);
    for (l, rec) in records.iter().enumerate() {
        for i in 0..n as NodeId {
            if rec.infected(i) {
                statuses.set(l, i);
            }
        }
    }
    Ok(ObservationSet::new(statuses, records))
}

/// Saves a full observation set to a file.
pub fn save_observations<P: AsRef<Path>>(obs: &ObservationSet, path: P) -> io::Result<()> {
    write_observations(obs, io::BufWriter::new(fs::File::create(path)?))
}

/// Loads a full observation set from a file.
pub fn load_observations<P: AsRef<Path>>(path: P) -> Result<ObservationSet, ObservationIoError> {
    read_observations(fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs() -> ObservationSet {
        use crate::{EdgeProbs, IcConfig, IndependentCascade};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = diffnet_graph::DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let probs = EdgeProbs::constant(&g, 0.6);
        let mut rng = StdRng::seed_from_u64(9);
        IndependentCascade::new(&g, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: 12,
            },
            &mut rng,
        )
    }

    #[test]
    fn status_matrix_round_trip() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_status_matrix(&obs.statuses, &mut buf).expect("write");
        let back = read_status_matrix(buf.as_slice()).expect("read");
        assert_eq!(back, obs.statuses);
    }

    #[test]
    fn observations_round_trip() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_observations(&obs, &mut buf).expect("write");
        let back = read_observations(buf.as_slice()).expect("read");
        assert_eq!(back.statuses, obs.statuses);
        assert_eq!(back.records, obs.records);
    }

    #[test]
    fn status_matrix_rejects_bad_token() {
        let err = read_status_matrix("0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 0/1"));
    }

    #[test]
    fn status_matrix_rejects_ragged_rows() {
        let err = read_status_matrix("0 1\n0 1 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn observations_reject_times_without_sources() {
        let text = "nodes: 2\ntimes: 0 -\n";
        let err = read_observations(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("without sources"));
    }

    #[test]
    fn observations_reject_wrong_width() {
        let text = "nodes: 3\nsources: 0\ntimes: 0 -\n";
        let err = read_observations(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3 times"));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            read_status_matrix("".as_bytes())
                .expect("ok")
                .num_processes(),
            0
        );
        let obs = read_observations("".as_bytes()).expect("ok");
        assert_eq!(obs.num_processes(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_sim_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let obs = sample_obs();
        let p1 = dir.join("statuses.txt");
        save_status_matrix(&obs.statuses, &p1).expect("save");
        assert_eq!(load_status_matrix(&p1).expect("load"), obs.statuses);
        let p2 = dir.join("obs.txt");
        save_observations(&obs, &p2).expect("save");
        assert_eq!(load_observations(&p2).expect("load").records, obs.records);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}
