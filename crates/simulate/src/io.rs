//! On-disk formats for observations.
//!
//! * **Status matrix** — one line per diffusion process, `n` space-
//!   separated `0`/`1` digits; `#` lines are comments. This is the
//!   interchange format for status-only pipelines (all TENDS needs).
//! * **Observation set** — the status format plus, per process, a
//!   `sources:` line and a `times:` line (with `-` for never-infected), so
//!   cascade-based baselines can be replayed from disk too.

use crate::{DiffusionRecord, NodeColumns, ObservationSet, StatusMatrix, UNINFECTED};
use diffnet_graph::NodeId;
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from observation parsing.
#[derive(Debug)]
pub enum ObservationIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file declared more records than it contained — the tail was
    /// cut off, e.g. by a crash during a non-atomic write.
    Truncated {
        /// Record count declared in the header comment.
        expected: usize,
        /// Records actually present.
        found: usize,
        /// Byte offset where input ended.
        offset: usize,
    },
}

impl fmt::Display for ObservationIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservationIoError::Io(e) => write!(f, "observation I/O error: {e}"),
            ObservationIoError::Parse { line, message } => {
                write!(f, "observation parse error at line {line}: {message}")
            }
            ObservationIoError::Truncated {
                expected,
                found,
                offset,
            } => write!(
                f,
                "observation file truncated at byte {offset}: header declares {expected} records, found {found}"
            ),
        }
    }
}

impl std::error::Error for ObservationIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObservationIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ObservationIoError {
    fn from(e: io::Error) -> Self {
        ObservationIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ObservationIoError {
    ObservationIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Extracts `(processes, nodes)` from a header comment of the form
/// `# diffnet <kind>: {β} processes x {n} nodes`. Returns `None` for
/// ordinary comments so headerless legacy files keep loading.
fn parse_header_counts(comment: &str, kind: &str) -> Option<(usize, usize)> {
    let rest = comment
        .trim_start_matches('#')
        .trim_start()
        .strip_prefix(kind)?
        .trim_start()
        .strip_prefix(':')?;
    let mut words = rest.split_whitespace();
    let beta: usize = words.next()?.parse().ok()?;
    if words.next()? != "processes" || words.next()? != "x" {
        return None;
    }
    let n: usize = words.next()?.parse().ok()?;
    if words.next()? != "nodes" {
        return None;
    }
    Some((beta, n))
}

/// Writes a status matrix: one `0`/`1` row per process.
pub fn write_status_matrix<W: Write>(m: &StatusMatrix, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# diffnet status matrix: {} processes x {} nodes",
        m.num_processes(),
        m.num_nodes()
    )?;
    let mut line = String::with_capacity(2 * m.num_nodes());
    for l in 0..m.num_processes() {
        line.clear();
        for i in 0..m.num_nodes() as NodeId {
            if i > 0 {
                line.push(' ');
            }
            line.push(if m.get(l, i) { '1' } else { '0' });
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a status matrix written by [`write_status_matrix`].
pub fn read_status_matrix<R: Read>(r: R) -> Result<StatusMatrix, ObservationIoError> {
    let mut rows: Vec<Vec<bool>> = Vec::new();
    let mut declared: Option<(usize, usize)> = None;
    let mut buf = BufReader::new(r);
    let mut line = String::new();
    let mut offset = 0usize;
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = buf.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        offset += read;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            if declared.is_none() {
                declared = parse_header_counts(t, "diffnet status matrix");
            }
            continue;
        }
        let row: Result<Vec<bool>, _> = t
            .split_whitespace()
            .map(|tok| match tok {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(parse_err(lineno, format!("expected 0/1, got {other:?}"))),
            })
            .collect();
        let row = row?;
        let expected_width = declared.map(|(_, n)| n).or(rows.first().map(Vec::len));
        if let Some(width) = expected_width {
            if width != row.len() {
                return Err(parse_err(
                    lineno,
                    format!("row has {} entries, expected {}", row.len(), width),
                ));
            }
        }
        rows.push(row);
    }
    if let Some((beta, _)) = declared {
        if rows.len() < beta {
            return Err(ObservationIoError::Truncated {
                expected: beta,
                found: rows.len(),
                offset,
            });
        }
    }
    Ok(StatusMatrix::from_rows(&rows))
}

/// Saves a status matrix to a file via an atomic temp-then-rename write.
pub fn save_status_matrix<P: AsRef<Path>>(m: &StatusMatrix, path: P) -> io::Result<()> {
    diffnet_graph::io::save_atomic(path, |w| write_status_matrix(m, w))
}

/// Loads a status matrix from a file.
pub fn load_status_matrix<P: AsRef<Path>>(path: P) -> Result<StatusMatrix, ObservationIoError> {
    read_status_matrix(fs::File::open(path)?)
}

/// Iterates `bytes` line by line, calling `f(lineno, line)` with the
/// 1-based line number and the raw line (newline stripped). Returns the
/// total byte count consumed, for truncation offsets.
fn for_each_line<'a>(
    bytes: &'a [u8],
    mut f: impl FnMut(usize, &'a [u8]) -> Result<(), ObservationIoError>,
) -> Result<usize, ObservationIoError> {
    let mut pos = 0usize;
    let mut lineno = 0usize;
    while pos < bytes.len() {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(bytes.len(), |k| pos + k + 1);
        lineno += 1;
        let line = bytes[pos..end]
            .strip_suffix(b"\n")
            .unwrap_or(&bytes[pos..end]);
        f(lineno, line)?;
        pos = end;
    }
    Ok(pos)
}

/// Parses a status-matrix file straight into its column-major bitset
/// view, without ever materializing the row-major [`StatusMatrix`] or any
/// per-row buffers.
///
/// Accepts the same format as [`read_status_matrix`] — optional
/// `# diffnet status matrix: …` header, `0`/`1` rows, `#` comments — with
/// the same typed errors (`Parse` for bad tokens / ragged rows,
/// `Truncated` with a byte offset when the header declares more rows than
/// the file holds). Two passes over the bytes: the first learns the shape
/// (header when present, otherwise the first row's width and the row
/// count), the second sets bits directly into the column bitsets, so peak
/// memory is the `n·⌈β/64⌉` words of the result plus the input bytes —
/// which [`load_status_columns`] keeps out of the heap via `mmap(2)`.
/// The result is identical to `read_status_matrix(bytes)?.columns()`.
pub fn read_status_columns(bytes: &[u8]) -> Result<NodeColumns, ObservationIoError> {
    // Pass 1: shape. Mirrors read_status_matrix's header handling (the
    // first matching comment anywhere in the file wins).
    let mut declared: Option<(usize, usize)> = None;
    let mut first_width: Option<usize> = None;
    let mut rows = 0usize;
    let offset = for_each_line(bytes, |lineno, raw| {
        let line = std::str::from_utf8(raw)
            .map_err(|_| parse_err(lineno, "invalid UTF-8 in status matrix"))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            if declared.is_none() {
                declared = parse_header_counts(t, "diffnet status matrix");
            }
        } else {
            if first_width.is_none() {
                first_width = Some(t.split_whitespace().count());
            }
            rows += 1;
        }
        Ok(())
    })?;
    if let Some((beta, _)) = declared {
        if rows < beta {
            return Err(ObservationIoError::Truncated {
                expected: beta,
                found: rows,
                offset,
            });
        }
    }
    let n = declared.map(|(_, n)| n).or(first_width).unwrap_or(0);

    // Pass 2: bits. β is the actual row count (as StatusMatrix::from_rows
    // would make it), so extra rows beyond a declared header still fit.
    let mut cols = NodeColumns::new_empty(rows, n);
    let mut l = 0usize;
    for_each_line(bytes, |lineno, raw| {
        // Validity was proven in pass 1; bad UTF-8 cannot appear now.
        let t = std::str::from_utf8(raw)
            .map_err(|_| parse_err(lineno, "invalid UTF-8 in status matrix"))?
            .trim();
        if t.is_empty() || t.starts_with('#') {
            return Ok(());
        }
        let mut i = 0usize;
        for tok in t.split_whitespace() {
            match tok {
                "0" => {}
                "1" => {
                    if i < n {
                        cols.set_bit(l, i);
                    }
                }
                other => return Err(parse_err(lineno, format!("expected 0/1, got {other:?}"))),
            }
            i += 1;
        }
        if i != n {
            return Err(parse_err(
                lineno,
                format!("row has {i} entries, expected {n}"),
            ));
        }
        l += 1;
        Ok(())
    })?;
    Ok(cols)
}

/// Loads a status matrix from a file directly into its column-major
/// bitset view, memory-mapping the file when possible (see
/// [`crate::mmap::open_bytes`]) so peak heap usage is just the column
/// bitsets — the entry point of the out-of-core reconstruction path.
pub fn load_status_columns<P: AsRef<Path>>(path: P) -> Result<NodeColumns, ObservationIoError> {
    let bytes = crate::mmap::open_bytes(path)?;
    read_status_columns(&bytes)
}

/// Writes a full observation set: per process a `sources:` line and a
/// `times:` line (`-` = never infected).
pub fn write_observations<W: Write>(obs: &ObservationSet, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# diffnet observations: {} processes x {} nodes",
        obs.num_processes(),
        obs.num_nodes()
    )?;
    writeln!(w, "nodes: {}", obs.num_nodes())?;
    for rec in &obs.records {
        write!(w, "sources:")?;
        for &s in &rec.sources {
            write!(w, " {s}")?;
        }
        writeln!(w)?;
        write!(w, "times:")?;
        for &t in &rec.times {
            if t == UNINFECTED {
                write!(w, " -")?;
            } else {
                write!(w, " {t}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads an observation set written by [`write_observations`].
pub fn read_observations<R: Read>(r: R) -> Result<ObservationSet, ObservationIoError> {
    let mut n: Option<usize> = None;
    let mut records: Vec<DiffusionRecord> = Vec::new();
    let mut pending_sources: Option<Vec<NodeId>> = None;
    let mut declared: Option<(usize, usize)> = None;
    let mut buf = BufReader::new(r);
    let mut line = String::new();
    let mut offset = 0usize;
    let mut lineno = 0usize;

    loop {
        line.clear();
        let read = buf.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        offset += read;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            if declared.is_none() {
                declared = parse_header_counts(t, "diffnet observations");
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix("nodes:") {
            n = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| parse_err(lineno, "invalid node count"))?,
            );
        } else if let Some(rest) = t.strip_prefix("sources:") {
            if pending_sources.is_some() {
                return Err(parse_err(lineno, "sources line without matching times"));
            }
            let sources: Result<Vec<NodeId>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<NodeId>()
                        .map_err(|_| parse_err(lineno, format!("invalid source {tok:?}")))
                })
                .collect();
            pending_sources = Some(sources?);
        } else if let Some(rest) = t.strip_prefix("times:") {
            let sources = pending_sources
                .take()
                .ok_or_else(|| parse_err(lineno, "times line without sources"))?;
            let times: Result<Vec<u32>, _> = rest
                .split_whitespace()
                .map(|tok| {
                    if tok == "-" {
                        Ok(UNINFECTED)
                    } else {
                        tok.parse::<u32>()
                            .map_err(|_| parse_err(lineno, format!("invalid time {tok:?}")))
                    }
                })
                .collect();
            let times = times?;
            let expected = n.ok_or_else(|| parse_err(lineno, "missing nodes: header"))?;
            if times.len() != expected {
                return Err(parse_err(
                    lineno,
                    format!("expected {expected} times, got {}", times.len()),
                ));
            }
            records.push(DiffusionRecord { sources, times });
        } else {
            return Err(parse_err(lineno, format!("unrecognized line {t:?}")));
        }
    }
    if pending_sources.is_some() {
        return Err(ObservationIoError::Truncated {
            expected: declared.map_or(records.len() + 1, |(beta, _)| beta),
            found: records.len(),
            offset,
        });
    }
    if let Some((beta, _)) = declared {
        if records.len() < beta {
            return Err(ObservationIoError::Truncated {
                expected: beta,
                found: records.len(),
                offset,
            });
        }
    }

    let n = n.unwrap_or(0);
    let mut statuses = StatusMatrix::new(records.len(), n);
    for (l, rec) in records.iter().enumerate() {
        for i in 0..n as NodeId {
            if rec.infected(i) {
                statuses.set(l, i);
            }
        }
    }
    Ok(ObservationSet::new(statuses, records))
}

/// Saves a full observation set to a file via an atomic temp-then-rename
/// write.
pub fn save_observations<P: AsRef<Path>>(obs: &ObservationSet, path: P) -> io::Result<()> {
    diffnet_graph::io::save_atomic(path, |w| write_observations(obs, w))
}

/// Loads a full observation set from a file.
pub fn load_observations<P: AsRef<Path>>(path: P) -> Result<ObservationSet, ObservationIoError> {
    read_observations(fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs() -> ObservationSet {
        use crate::{EdgeProbs, IcConfig, IndependentCascade};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = diffnet_graph::DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let probs = EdgeProbs::constant(&g, 0.6);
        let mut rng = StdRng::seed_from_u64(9);
        IndependentCascade::new(&g, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: 12,
            },
            &mut rng,
        )
    }

    #[test]
    fn status_matrix_round_trip() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_status_matrix(&obs.statuses, &mut buf).expect("write");
        let back = read_status_matrix(buf.as_slice()).expect("read");
        assert_eq!(back, obs.statuses);
    }

    #[test]
    fn observations_round_trip() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_observations(&obs, &mut buf).expect("write");
        let back = read_observations(buf.as_slice()).expect("read");
        assert_eq!(back.statuses, obs.statuses);
        assert_eq!(back.records, obs.records);
    }

    #[test]
    fn status_matrix_rejects_bad_token() {
        let err = read_status_matrix("0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 0/1"));
    }

    #[test]
    fn status_matrix_rejects_ragged_rows() {
        let err = read_status_matrix("0 1\n0 1 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn observations_reject_times_without_sources() {
        let text = "nodes: 2\ntimes: 0 -\n";
        let err = read_observations(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("without sources"));
    }

    #[test]
    fn observations_reject_wrong_width() {
        let text = "nodes: 3\nsources: 0\ntimes: 0 -\n";
        let err = read_observations(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3 times"));
    }

    #[test]
    fn truncated_status_matrix_reports_byte_offset() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_status_matrix(&obs.statuses, &mut buf).expect("write");
        // Drop the last row entirely, as a crash at a line boundary would.
        let text = String::from_utf8(buf).expect("utf8");
        let cut = text.trim_end().rfind('\n').expect("multiple lines") + 1;
        match read_status_matrix(&text.as_bytes()[..cut]) {
            Err(ObservationIoError::Truncated {
                expected,
                found,
                offset,
            }) => {
                assert_eq!(expected, obs.num_processes());
                assert_eq!(found, obs.num_processes() - 1);
                assert_eq!(offset, cut);
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn mid_row_truncation_detected_via_declared_width() {
        // Cut inside the final row: the partial row is narrower than the
        // width declared in the header, so the reader refuses it instead
        // of parsing a smaller matrix.
        let text = "# diffnet status matrix: 2 processes x 4 nodes\n0 1 0 1\n1 0\n";
        let err = read_status_matrix(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4"), "got {err}");
    }

    #[test]
    fn truncated_observations_report_byte_offset() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_observations(&obs, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        // Cut after the last sources: line — a dangling record.
        let cut = text.trim_end().rfind('\n').expect("multiple lines") + 1;
        match read_observations(&text.as_bytes()[..cut]) {
            Err(ObservationIoError::Truncated { found, offset, .. }) => {
                assert_eq!(found, obs.num_processes() - 1);
                assert_eq!(offset, cut);
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_headerless_status_matrix_still_loads() {
        let m = read_status_matrix("0 1\n1 0\n".as_bytes()).expect("parse");
        assert_eq!(m.num_processes(), 2);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            read_status_matrix("".as_bytes())
                .expect("ok")
                .num_processes(),
            0
        );
        let obs = read_observations("".as_bytes()).expect("ok");
        assert_eq!(obs.num_processes(), 0);
    }

    #[test]
    fn streamed_columns_match_dense_columns() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        write_status_matrix(&obs.statuses, &mut buf).expect("write");
        let streamed = read_status_columns(&buf).expect("streamed parse");
        let dense = read_status_matrix(buf.as_slice()).expect("dense parse");
        assert_eq!(streamed, dense.columns());
    }

    #[test]
    fn streamed_columns_handle_headerless_and_empty() {
        let streamed = read_status_columns(b"0 1\n1 0\n").expect("parse");
        let dense = read_status_matrix("0 1\n1 0\n".as_bytes()).expect("parse");
        assert_eq!(streamed, dense.columns());
        let empty = read_status_columns(b"").expect("parse");
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_processes(), 0);
    }

    #[test]
    fn streamed_columns_report_truncation_with_offset() {
        let text = "# diffnet status matrix: 3 processes x 2 nodes\n0 1\n1 0\n";
        match read_status_columns(text.as_bytes()) {
            Err(ObservationIoError::Truncated {
                expected,
                found,
                offset,
            }) => {
                assert_eq!(expected, 3);
                assert_eq!(found, 2);
                assert_eq!(offset, text.len());
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn streamed_columns_reject_hostile_bytes() {
        // Bad token.
        let err = read_status_columns(b"0 1 2\n").unwrap_err();
        assert!(matches!(err, ObservationIoError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("expected 0/1"));
        // Ragged row against the declared width.
        let text = "# diffnet status matrix: 2 processes x 4 nodes\n0 1 0 1\n1 0\n";
        let err = read_status_columns(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 4"), "got {err}");
        // Invalid UTF-8 is a typed parse error, not a panic or io error.
        let err = read_status_columns(&[0x30, 0x20, 0xff, 0xfe, 0x0a]).unwrap_err();
        assert!(err.to_string().contains("invalid UTF-8"), "got {err}");
    }

    #[test]
    fn load_status_columns_reads_mmap_file() {
        let dir = std::env::temp_dir().join("diffnet_sim_io_cols_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let obs = sample_obs();
        let path = dir.join("statuses.txt");
        save_status_matrix(&obs.statuses, &path).expect("save");
        let cols = load_status_columns(&path).expect("load streamed");
        assert_eq!(cols, obs.statuses.columns());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("diffnet_sim_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let obs = sample_obs();
        let p1 = dir.join("statuses.txt");
        save_status_matrix(&obs.statuses, &p1).expect("save");
        assert_eq!(load_status_matrix(&p1).expect("load"), obs.statuses);
        let p2 = dir.join("obs.txt");
        save_observations(&obs, &p2).expect("save");
        assert_eq!(load_observations(&p2).expect("load").records, obs.records);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}
