//! Read-only file mapping via raw `mmap(2)` FFI, with a buffered fallback.
//!
//! The out-of-core status pipeline wants an input file as one contiguous
//! byte slice without first copying it through the heap. On unix targets
//! [`Mmap::map`] maps the whole file `PROT_READ` + `MAP_PRIVATE` through
//! two raw libc declarations — `std` already links libc, so this keeps
//! the workspace's zero-dependency rule, matching the `getrusage` /
//! `sysconf` precedent in `diffnet-observe`. [`open_bytes`] is the
//! portable entry point: it prefers the mapping and silently falls back
//! to an ordinary buffered read on other targets or when `mmap` fails,
//! so callers always get bytes, just without page-cache sharing.
//!
//! Mapped bytes alias the file: mutating the file while a mapping is
//! live can change the slice contents mid-read. Callers must treat
//! mapped inputs as immutable for the mapping's lifetime.

use std::fs::File;
use std::io;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod raw {
    use std::ffi::c_void;

    // Prototypes as POSIX declares them; no crate is added because std
    // already links libc on unix targets.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// A read-only `mmap(2)` view of an entire file, unmapped on drop.
///
/// Dereferences to `&[u8]`. Zero-length files are represented as an
/// empty slice without calling `mmap` (which rejects zero-length
/// mappings).
#[cfg(unix)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

#[cfg(unix)]
impl Mmap {
    /// Maps `file` read-only in its entirety.
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            });
        }
        let ptr = unsafe {
            raw::mmap(
                std::ptr::null_mut(),
                len,
                raw::PROT_READ,
                raw::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == raw::MAP_FAILED || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast(),
            len,
        })
    }
}

#[cfg(unix)]
impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe {
                raw::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

// The mapping is private and read-only; the kernel, not the pointer
// owner, manages the pages.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// File contents as a byte slice: memory-mapped when available, buffered
/// otherwise. Produced by [`open_bytes`].
pub enum FileBytes {
    /// A live `mmap(2)` view.
    #[cfg(unix)]
    Mapped(Mmap),
    /// The whole file read into memory (non-unix targets, or `mmap`
    /// failure — e.g. filesystems that refuse mappings).
    Buffered(Vec<u8>),
}

impl Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            FileBytes::Mapped(m) => m,
            FileBytes::Buffered(v) => v,
        }
    }
}

/// Opens `path` and returns its bytes, preferring a zero-copy mapping.
pub fn open_bytes<P: AsRef<Path>>(path: P) -> io::Result<FileBytes> {
    let mut file = File::open(path)?;
    #[cfg(unix)]
    if let Ok(mapped) = Mmap::map(&file) {
        return Ok(FileBytes::Mapped(mapped));
    }
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    Ok(FileBytes::Buffered(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("diffnet_mmap_test_{name}"));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(contents).expect("write temp file");
        path
    }

    #[test]
    fn open_bytes_matches_file_contents() {
        let path = temp_file("roundtrip", b"# header\n0 1 0\n1 1 0\n");
        let bytes = open_bytes(&path).expect("open_bytes");
        assert_eq!(&*bytes, &std::fs::read(&path).expect("fs::read")[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_bytes_handles_empty_file() {
        let path = temp_file("empty", b"");
        let bytes = open_bytes(&path).expect("open_bytes");
        assert!(bytes.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_bytes_missing_file_is_io_error() {
        let path = std::env::temp_dir().join("diffnet_mmap_test_does_not_exist");
        assert!(open_bytes(&path).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_large_file_spans_pages() {
        let contents: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let path = temp_file("large", &contents);
        let file = File::open(&path).expect("open");
        let mapped = Mmap::map(&file).expect("map");
        assert_eq!(&*mapped, &contents[..]);
        drop(mapped);
        let _ = std::fs::remove_file(&path);
    }
}
