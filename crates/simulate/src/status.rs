//! Bit-packed infection status matrix and its counting kernels.
//!
//! The status matrix `S ∈ {0,1}^{β×n}` is the *only* input TENDS consumes.
//! Its hot operations are:
//!
//! * pairwise joint counts (for the infection-MI pruning) — served by a
//!   column-major transpose ([`NodeColumns`]) where each count is a few
//!   `popcount`s, and
//! * parent-combination counts `N_ijk` (for the scoring criterion) —
//!   served by [`StatusMatrix::combo_counts`], a row scan that assembles
//!   each process's combination index bit by bit.

use diffnet_graph::NodeId;

const WORD_BITS: usize = 64;

/// A `β × n` binary matrix: row `ℓ` holds the final infection statuses of
/// all `n` nodes in the `ℓ`-th diffusion process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusMatrix {
    beta: usize,
    n: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl StatusMatrix {
    /// An all-uninfected matrix for `beta` processes over `n` nodes.
    pub fn new(beta: usize, n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS).max(1);
        StatusMatrix { beta, n, words_per_row, rows: vec![0; beta * words_per_row] }
    }

    /// Builds from boolean rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let beta = rows.len();
        let n = rows.first().map_or(0, |r| r.len());
        let mut m = StatusMatrix::new(beta, n);
        for (l, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {l} has inconsistent length");
            for (i, &infected) in row.iter().enumerate() {
                if infected {
                    m.set(l, i as NodeId);
                }
            }
        }
        m
    }

    /// Number of processes `β`.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.beta
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Marks node `i` infected in process `l`.
    #[inline]
    pub fn set(&mut self, l: usize, i: NodeId) {
        debug_assert!(l < self.beta && (i as usize) < self.n);
        let w = l * self.words_per_row + (i as usize) / WORD_BITS;
        self.rows[w] |= 1u64 << ((i as usize) % WORD_BITS);
    }

    /// Whether node `i` is infected in process `l`.
    #[inline]
    pub fn get(&self, l: usize, i: NodeId) -> bool {
        debug_assert!(l < self.beta && (i as usize) < self.n);
        let w = l * self.words_per_row + (i as usize) / WORD_BITS;
        (self.rows[w] >> ((i as usize) % WORD_BITS)) & 1 == 1
    }

    /// Number of infected nodes in process `l`.
    pub fn infected_in_process(&self, l: usize) -> usize {
        let start = l * self.words_per_row;
        self.rows[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of processes in which node `i` ends up infected — the paper's
    /// `N₂` for node `i` (`N₁ = β − N₂`).
    pub fn infection_count(&self, i: NodeId) -> usize {
        (0..self.beta).filter(|&l| self.get(l, i)).count()
    }

    /// Counts `N_ijk` for child `i` with ordered parent set `parents`.
    ///
    /// Returns a vector of length `2^|parents|`; entry `j` is `[N_ij1,
    /// N_ij2]`, i.e. the number of processes where the parents' statuses
    /// form combination `j` (parent `t`'s status is bit `t` of `j`) and the
    /// child is uninfected (`k=1`, status 0) / infected (`k=2`, status 1),
    /// following the paper's `s₁ = 0, s₂ = 1` convention.
    ///
    /// # Panics
    ///
    /// Panics if `parents.len() >= 26` (combination table would not fit in
    /// memory; TENDS's Theorem-2 bound keeps real parent sets far smaller).
    pub fn combo_counts(&self, child: NodeId, parents: &[NodeId]) -> Vec<[u64; 2]> {
        assert!(
            parents.len() < 26,
            "parent set of {} nodes is too large to tabulate",
            parents.len()
        );
        let mut counts = vec![[0u64; 2]; 1usize << parents.len()];
        for l in 0..self.beta {
            let mut j = 0usize;
            for (t, &p) in parents.iter().enumerate() {
                if self.get(l, p) {
                    j |= 1 << t;
                }
            }
            let k = usize::from(self.get(l, child));
            counts[j][k] += 1;
        }
        counts
    }

    /// Builds the column-major transpose used for fast pairwise counting.
    pub fn columns(&self) -> NodeColumns {
        NodeColumns::from_matrix(self)
    }

    /// Overall infected fraction across all processes and nodes.
    pub fn infected_fraction(&self) -> f64 {
        if self.beta == 0 || self.n == 0 {
            return 0.0;
        }
        let total: usize = (0..self.beta).map(|l| self.infected_in_process(l)).sum();
        total as f64 / (self.beta * self.n) as f64
    }
}

/// Joint status counts for a node pair across all processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairCounts {
    /// Processes where both are infected.
    pub n11: u64,
    /// Processes where `i` is infected and `j` is not.
    pub n10: u64,
    /// Processes where `j` is infected and `i` is not.
    pub n01: u64,
    /// Processes where neither is infected.
    pub n00: u64,
}

impl PairCounts {
    /// Total number of processes `β`.
    pub fn total(&self) -> u64 {
        self.n11 + self.n10 + self.n01 + self.n00
    }
}

/// Column-major bitset view: one `β`-bit vector per node, so pairwise joint
/// counts are word-parallel `popcount`s.
#[derive(Clone, Debug)]
pub struct NodeColumns {
    beta: usize,
    words_per_col: usize,
    cols: Vec<u64>,
}

impl NodeColumns {
    fn from_matrix(m: &StatusMatrix) -> Self {
        let words_per_col = m.beta.div_ceil(WORD_BITS).max(1);
        let mut cols = vec![0u64; m.n * words_per_col];
        for l in 0..m.beta {
            for i in 0..m.n {
                if m.get(l, i as NodeId) {
                    cols[i * words_per_col + l / WORD_BITS] |=
                        1u64 << (l % WORD_BITS);
                }
            }
        }
        NodeColumns { beta: m.beta, words_per_col, cols }
    }

    /// Number of processes `β`.
    pub fn num_processes(&self) -> usize {
        self.beta
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cols.len().checked_div(self.words_per_col).unwrap_or(0)
    }

    #[inline]
    fn col(&self, i: NodeId) -> &[u64] {
        let i = i as usize;
        &self.cols[i * self.words_per_col..(i + 1) * self.words_per_col]
    }

    /// Number of processes where node `i` is infected.
    pub fn ones(&self, i: NodeId) -> u64 {
        self.col(i).iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Counts `N_ijk` for child `i` with ordered parent set `parents`,
    /// word-parallel.
    ///
    /// Semantics are identical to [`StatusMatrix::combo_counts`] (entry `j`
    /// of the result is `[N_ij1, N_ij2]`, parent `t`'s status is bit `t` of
    /// `j`), but the combination table is built by recursive bitset
    /// intersection: for `f` parents the cost is `O(2^f · ⌈β/64⌉)` word
    /// operations instead of `O(β · f)` bit probes. This is the scoring
    /// hot path of TENDS.
    pub fn combo_counts(&self, child: NodeId, parents: &[NodeId]) -> Vec<[u64; 2]> {
        assert!(
            parents.len() < 26,
            "parent set of {} nodes is too large to tabulate",
            parents.len()
        );
        let words = self.words_per_col;
        let mut counts = vec![[0u64; 2]; 1usize << parents.len()];
        // All-ones mask over the β valid process bits.
        let mut root = vec![u64::MAX; words];
        if !self.beta.is_multiple_of(WORD_BITS) {
            root[words - 1] = (1u64 << (self.beta % WORD_BITS)) - 1;
        }
        if self.beta == 0 {
            root[words - 1] = 0;
        }
        self.combo_rec(child, parents, 0, 0, &root, &mut counts);
        counts
    }

    fn combo_rec(
        &self,
        child: NodeId,
        parents: &[NodeId],
        depth: usize,
        index: usize,
        mask: &[u64],
        counts: &mut [[u64; 2]],
    ) {
        if depth == parents.len() {
            let ccol = self.col(child);
            let mut infected = 0u64;
            let mut total = 0u64;
            for (m, c) in mask.iter().zip(ccol) {
                infected += (m & c).count_ones() as u64;
                total += m.count_ones() as u64;
            }
            counts[index] = [total - infected, infected];
            return;
        }
        // Prune empty branches: every deeper combination has N_ij = 0,
        // which is what the zero-initialized table already says.
        if mask.iter().all(|&m| m == 0) {
            return;
        }
        let pcol = self.col(parents[depth]);
        let zero: Vec<u64> = mask.iter().zip(pcol).map(|(m, p)| m & !p).collect();
        let one: Vec<u64> = mask.iter().zip(pcol).map(|(m, p)| m & p).collect();
        self.combo_rec(child, parents, depth + 1, index, &zero, counts);
        self.combo_rec(child, parents, depth + 1, index | (1 << depth), &one, counts);
    }

    /// Joint counts for the pair `(i, j)` over all `β` processes.
    pub fn pair_counts(&self, i: NodeId, j: NodeId) -> PairCounts {
        let (ci, cj) = (self.col(i), self.col(j));
        let mut n11 = 0u64;
        let mut ones_i = 0u64;
        let mut ones_j = 0u64;
        for (wi, wj) in ci.iter().zip(cj) {
            n11 += (wi & wj).count_ones() as u64;
            ones_i += wi.count_ones() as u64;
            ones_j += wj.count_ones() as u64;
        }
        let n10 = ones_i - n11;
        let n01 = ones_j - n11;
        let n00 = self.beta as u64 - n11 - n10 - n01;
        PairCounts { n11, n10, n01, n00 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusMatrix {
        StatusMatrix::from_rows(&[
            vec![true, false, true],
            vec![true, true, false],
            vec![false, false, false],
            vec![true, true, true],
        ])
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = StatusMatrix::new(3, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.get(0, 0) && m.get(1, 64) && m.get(2, 129));
        assert!(!m.get(0, 1) && !m.get(1, 63) && !m.get(2, 128));
    }

    #[test]
    fn from_rows_matches_get() {
        let m = sample();
        assert_eq!(m.num_processes(), 4);
        assert_eq!(m.num_nodes(), 3);
        assert!(m.get(0, 0) && !m.get(0, 1) && m.get(0, 2));
        assert!(!m.get(2, 0) && !m.get(2, 1) && !m.get(2, 2));
    }

    #[test]
    fn per_process_and_per_node_counts() {
        let m = sample();
        assert_eq!(m.infected_in_process(0), 2);
        assert_eq!(m.infected_in_process(2), 0);
        assert_eq!(m.infection_count(0), 3);
        assert_eq!(m.infection_count(1), 2);
        assert_eq!(m.infection_count(2), 2);
    }

    #[test]
    fn infected_fraction() {
        let m = sample();
        assert!((m.infected_fraction() - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(StatusMatrix::new(0, 0).infected_fraction(), 0.0);
    }

    #[test]
    fn combo_counts_empty_parent_set() {
        let m = sample();
        let c = m.combo_counts(0, &[]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], [1, 3]); // node 0 uninfected once, infected 3 times
    }

    #[test]
    fn combo_counts_single_parent() {
        let m = sample();
        // child = 2, parent = 1. Processes: (p1, c2) = (0,1),(1,0),(0,0),(1,1)
        let c = m.combo_counts(2, &[1]);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], [1, 1]); // parent 0: child 0 once (row 2), child 1 once (row 0)
        assert_eq!(c[1], [1, 1]); // parent 1: child 0 once (row 1), child 1 once (row 3)
    }

    #[test]
    fn combo_counts_two_parents_bit_order() {
        let m = sample();
        // child = 2, parents = [0, 1]: bit 0 is node 0's status, bit 1 node 1's.
        let c = m.combo_counts(2, &[0, 1]);
        assert_eq!(c.len(), 4);
        // rows: (s0,s1,s2) = (1,0,1),(1,1,0),(0,0,0),(1,1,1)
        assert_eq!(c[0b00], [1, 0]); // row 2
        assert_eq!(c[0b01], [0, 1]); // row 0
        assert_eq!(c[0b10], [0, 0]);
        assert_eq!(c[0b11], [1, 1]); // rows 1 and 3
        let total: u64 = c.iter().map(|kc| kc[0] + kc[1]).sum();
        assert_eq!(total, m.num_processes() as u64, "ΣN_ij = β");
    }

    #[test]
    fn pair_counts_agree_with_bruteforce() {
        let m = sample();
        let cols = m.columns();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let pc = cols.pair_counts(i, j);
                let mut expect = PairCounts { n11: 0, n10: 0, n01: 0, n00: 0 };
                for l in 0..m.num_processes() {
                    match (m.get(l, i), m.get(l, j)) {
                        (true, true) => expect.n11 += 1,
                        (true, false) => expect.n10 += 1,
                        (false, true) => expect.n01 += 1,
                        (false, false) => expect.n00 += 1,
                    }
                }
                assert_eq!(pc, expect, "pair ({i},{j})");
                assert_eq!(pc.total(), 4);
            }
        }
    }

    #[test]
    fn columns_across_word_boundary() {
        // β = 70 crosses the 64-bit word boundary in the column bitsets.
        let mut m = StatusMatrix::new(70, 2);
        for l in 0..70 {
            if l % 2 == 0 {
                m.set(l, 0);
            }
            if l % 3 == 0 {
                m.set(l, 1);
            }
        }
        let cols = m.columns();
        assert_eq!(cols.ones(0), 35);
        assert_eq!(cols.ones(1), 24);
        let pc = cols.pair_counts(0, 1);
        assert_eq!(pc.n11, (0..70).filter(|l| l % 2 == 0 && l % 3 == 0).count() as u64);
        assert_eq!(pc.total(), 70);
    }

    #[test]
    fn column_combo_counts_match_row_combo_counts() {
        // Randomized cross-check of the two N_ijk kernels, across a word
        // boundary in β.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let beta = 100;
        let n = 10;
        let mut m = StatusMatrix::new(beta, n);
        for l in 0..beta {
            for i in 0..n {
                if next() % 3 == 0 {
                    m.set(l, i as NodeId);
                }
            }
        }
        let cols = m.columns();
        for parents in [
            vec![],
            vec![1],
            vec![3, 7],
            vec![0, 2, 5],
            vec![1, 4, 6, 9],
            vec![0, 1, 2, 3, 4],
        ] {
            let child = 8;
            assert_eq!(
                cols.combo_counts(child, &parents),
                m.combo_counts(child, &parents),
                "parents {parents:?}"
            );
        }
    }

    #[test]
    fn column_combo_counts_zero_beta() {
        let m = StatusMatrix::new(0, 4);
        let cols = m.columns();
        assert_eq!(cols.combo_counts(0, &[1, 2]), vec![[0, 0]; 4]);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn combo_counts_rejects_huge_parent_sets() {
        let m = StatusMatrix::new(1, 30);
        let parents: Vec<NodeId> = (0..26).collect();
        m.combo_counts(29, &parents);
    }

    #[test]
    fn zero_size_matrices() {
        let m = StatusMatrix::new(0, 0);
        assert_eq!(m.num_processes(), 0);
        assert_eq!(m.columns().num_nodes(), 0);
        let m2 = StatusMatrix::new(5, 0);
        assert_eq!(m2.infected_fraction(), 0.0);
    }
}
