//! Bit-packed infection status matrix and its counting kernels.
//!
//! The status matrix `S ∈ {0,1}^{β×n}` is the *only* input TENDS consumes.
//! Its hot operations are:
//!
//! * pairwise joint counts (for the infection-MI pruning) — served by a
//!   column-major transpose ([`NodeColumns`]) where each count is a few
//!   `popcount`s, and
//! * parent-combination counts `N_ijk` (for the scoring criterion) —
//!   served by [`StatusMatrix::combo_counts`], a row scan that assembles
//!   each process's combination index bit by bit.

use diffnet_graph::NodeId;
use std::fmt;

const WORD_BITS: usize = 64;

/// Largest parent set any counting kernel will tabulate: the combination
/// table has `2^|parents|` entries, so 26+ parents would not fit in memory.
/// TENDS's Theorem-2 bound keeps real parent sets far smaller; the limit
/// only guards against hostile or degenerate inputs.
pub const MAX_TABULATED_PARENTS: usize = 25;

/// A parent set too large to tabulate: its `2^|parents|` combination table
/// would exceed [`MAX_TABULATED_PARENTS`].
///
/// Returned (instead of panicking) by every `N_ijk` counting kernel, so
/// hostile inputs surface as a typed error through the search API rather
/// than aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComboSizeError {
    /// The offending parent-set size.
    pub parents: usize,
}

impl fmt::Display for ComboSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parent set of {} nodes is too large to tabulate (limit {})",
            self.parents, MAX_TABULATED_PARENTS
        )
    }
}

impl std::error::Error for ComboSizeError {}

/// Errors unless `parents` fits in a combination table.
#[inline]
fn check_combo_size(parents: usize) -> Result<(), ComboSizeError> {
    if parents > MAX_TABULATED_PARENTS {
        Err(ComboSizeError { parents })
    } else {
        Ok(())
    }
}

/// A `β × n` binary matrix: row `ℓ` holds the final infection statuses of
/// all `n` nodes in the `ℓ`-th diffusion process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusMatrix {
    beta: usize,
    n: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl StatusMatrix {
    /// An all-uninfected matrix for `beta` processes over `n` nodes.
    pub fn new(beta: usize, n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS).max(1);
        StatusMatrix {
            beta,
            n,
            words_per_row,
            rows: vec![0; beta * words_per_row],
        }
    }

    /// Builds from boolean rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let beta = rows.len();
        let n = rows.first().map_or(0, |r| r.len());
        let mut m = StatusMatrix::new(beta, n);
        for (l, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {l} has inconsistent length");
            for (i, &infected) in row.iter().enumerate() {
                if infected {
                    m.set(l, i as NodeId);
                }
            }
        }
        m
    }

    /// Number of processes `β`.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.beta
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Marks node `i` infected in process `l`.
    #[inline]
    pub fn set(&mut self, l: usize, i: NodeId) {
        debug_assert!(l < self.beta && (i as usize) < self.n);
        let w = l * self.words_per_row + (i as usize) / WORD_BITS;
        self.rows[w] |= 1u64 << ((i as usize) % WORD_BITS);
    }

    /// Whether node `i` is infected in process `l`.
    #[inline]
    pub fn get(&self, l: usize, i: NodeId) -> bool {
        debug_assert!(l < self.beta && (i as usize) < self.n);
        let w = l * self.words_per_row + (i as usize) / WORD_BITS;
        (self.rows[w] >> ((i as usize) % WORD_BITS)) & 1 == 1
    }

    /// Number of infected nodes in process `l`.
    pub fn infected_in_process(&self, l: usize) -> usize {
        let start = l * self.words_per_row;
        self.rows[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of processes in which node `i` ends up infected — the paper's
    /// `N₂` for node `i` (`N₁ = β − N₂`).
    pub fn infection_count(&self, i: NodeId) -> usize {
        (0..self.beta).filter(|&l| self.get(l, i)).count()
    }

    /// Counts `N_ijk` for child `i` with ordered parent set `parents`.
    ///
    /// Returns a vector of length `2^|parents|`; entry `j` is `[N_ij1,
    /// N_ij2]`, i.e. the number of processes where the parents' statuses
    /// form combination `j` (parent `t`'s status is bit `t` of `j`) and the
    /// child is uninfected (`k=1`, status 0) / infected (`k=2`, status 1),
    /// following the paper's `s₁ = 0, s₂ = 1` convention.
    ///
    /// # Errors
    ///
    /// Returns [`ComboSizeError`] if `parents.len()` exceeds
    /// [`MAX_TABULATED_PARENTS`] (the combination table would not fit in
    /// memory; TENDS's Theorem-2 bound keeps real parent sets far smaller).
    pub fn combo_counts(
        &self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<Vec<[u64; 2]>, ComboSizeError> {
        check_combo_size(parents.len())?;
        let mut counts = vec![[0u64; 2]; 1usize << parents.len()];
        for l in 0..self.beta {
            let mut j = 0usize;
            for (t, &p) in parents.iter().enumerate() {
                if self.get(l, p) {
                    j |= 1 << t;
                }
            }
            let k = usize::from(self.get(l, child));
            counts[j][k] += 1;
        }
        Ok(counts)
    }

    /// Builds the column-major transpose used for fast pairwise counting.
    pub fn columns(&self) -> NodeColumns {
        NodeColumns::from_matrix(self)
    }

    /// Overall infected fraction across all processes and nodes.
    pub fn infected_fraction(&self) -> f64 {
        if self.beta == 0 || self.n == 0 {
            return 0.0;
        }
        let total: usize = (0..self.beta).map(|l| self.infected_in_process(l)).sum();
        total as f64 / (self.beta * self.n) as f64
    }
}

/// Joint status counts for a node pair across all processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairCounts {
    /// Processes where both are infected.
    pub n11: u64,
    /// Processes where `i` is infected and `j` is not.
    pub n10: u64,
    /// Processes where `j` is infected and `i` is not.
    pub n01: u64,
    /// Processes where neither is infected.
    pub n00: u64,
}

impl PairCounts {
    /// Total number of processes `β`.
    pub fn total(&self) -> u64 {
        self.n11 + self.n10 + self.n01 + self.n00
    }
}

/// Column-major bitset view: one `β`-bit vector per node, so pairwise joint
/// counts are word-parallel `popcount`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeColumns {
    beta: usize,
    words_per_col: usize,
    cols: Vec<u64>,
}

impl NodeColumns {
    /// An all-uninfected column view for `beta` processes over `n` nodes —
    /// the allocation target of the streaming status parser
    /// ([`crate::io::read_status_columns`]), which sets bits directly into
    /// the column bitsets without ever materializing the row-major matrix.
    pub(crate) fn new_empty(beta: usize, n: usize) -> Self {
        let words_per_col = beta.div_ceil(WORD_BITS).max(1);
        NodeColumns {
            beta,
            words_per_col,
            cols: vec![0u64; n * words_per_col],
        }
    }

    /// Marks node `i` infected in process `l` (streaming-parser hook).
    #[inline]
    pub(crate) fn set_bit(&mut self, l: usize, i: usize) {
        debug_assert!(l < self.beta && i * self.words_per_col < self.cols.len());
        self.cols[i * self.words_per_col + l / WORD_BITS] |= 1u64 << (l % WORD_BITS);
    }

    fn from_matrix(m: &StatusMatrix) -> Self {
        let words_per_col = m.beta.div_ceil(WORD_BITS).max(1);
        let mut cols = vec![0u64; m.n * words_per_col];
        // Cache-blocked bit transpose: each 64×64 tile (one row-word column
        // by one process-word row) is gathered into registers, transposed
        // with the Hacker's Delight butterfly network, and scattered into
        // the column bitsets — `O(n·β/64)` word swaps with linear streaming
        // over the source rows, instead of `O(n·β)` strided bit probes.
        let mut tile = [0u64; WORD_BITS];
        for iw in 0..m.words_per_row {
            let cols_here = m.n.saturating_sub(iw * WORD_BITS).min(WORD_BITS);
            for lw in 0..m.beta.div_ceil(WORD_BITS) {
                let rows_here = (m.beta - lw * WORD_BITS).min(WORD_BITS);
                for (r, t) in tile.iter_mut().take(rows_here).enumerate() {
                    *t = m.rows[(lw * WORD_BITS + r) * m.words_per_row + iw];
                }
                tile[rows_here..].fill(0);
                transpose64(&mut tile);
                for (c, &w) in tile.iter().enumerate().take(cols_here) {
                    cols[(iw * WORD_BITS + c) * words_per_col + lw] = w;
                }
            }
        }
        NodeColumns {
            beta: m.beta,
            words_per_col,
            cols,
        }
    }

    /// Number of processes `β`.
    pub fn num_processes(&self) -> usize {
        self.beta
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cols.len().checked_div(self.words_per_col).unwrap_or(0)
    }

    /// Node `i`'s raw `β`-bit infection column (process `l` is bit `l`,
    /// little-endian; padding bits past `β` are zero). The operand shape
    /// the [`simd`](crate::simd) kernels consume — exposed so benchmarks
    /// can time explicit kernel tiers over real column data.
    #[inline]
    pub fn col(&self, i: NodeId) -> &[u64] {
        let i = i as usize;
        &self.cols[i * self.words_per_col..(i + 1) * self.words_per_col]
    }

    /// Number of processes where node `i` is infected.
    pub fn ones(&self, i: NodeId) -> u64 {
        crate::simd::kernels().popcount(self.col(i))
    }

    /// Per-column ones counts for every node, in node order — the
    /// precompute that lets the tiled pairwise kernel derive `n10/n01/n00`
    /// from `n11` alone and short-circuit degenerate columns.
    pub fn ones_counts(&self) -> Vec<u64> {
        (0..self.num_nodes() as u32).map(|i| self.ones(i)).collect()
    }

    /// Suggested tile side for [`pair_counts_block`], lane-width-aware:
    /// the largest `T` such that two tiles of `T` columns — each column's
    /// `⌈β/64⌉` words rounded up to whole 256-bit lane groups, since the
    /// SIMD kernels consume four words per step regardless of the tail —
    /// stay within a 32 KiB L1 budget, clamped to `[16, 1024]` and then
    /// aligned down to a multiple of 16 so tile boundaries land on SIMD
    /// word groups. At the paper's scales (`β = 150`, 3 words ⇒ one
    /// 32-byte lane group per column) this is 512, so the whole working
    /// set of a tile pair stays L1-resident; tiles start mattering once
    /// `β` reaches the tens of thousands, where a single column spans
    /// many cache lines.
    ///
    /// [`pair_counts_block`]: NodeColumns::pair_counts_block
    pub fn pair_tile_size(&self) -> usize {
        const L1_BUDGET_BYTES: usize = 32 * 1024;
        // 256-bit AVX2 lane group: four 64-bit words.
        const LANE_BYTES: usize = 32;
        let col_bytes =
            (self.words_per_col * std::mem::size_of::<u64>()).next_multiple_of(LANE_BYTES);
        let t = (L1_BUDGET_BYTES / (2 * col_bytes)).clamp(16, 1024);
        t - t % 16
    }

    /// Joint counts for every pair `(i, j)` with `i ∈ rows`, `j ∈ cols`,
    /// and `i < j`, emitted in row-major order.
    ///
    /// This is the tiled counterpart of [`pair_counts`]: callers walk the
    /// upper triangle in `T×T` blocks (see [`pair_tile_size`], which sizes
    /// `T` to the SIMD lane width) so the `j` tile's columns stay hot in L1
    /// while the `i` rows stream past. Per pair it runs a single
    /// AND+popcount pass for `n11` through the runtime-dispatched
    /// [`simd`](crate::simd) kernel (AVX2/popcnt/scalar, resolved once per
    /// process) and derives `n10/n01/n00` from the precomputed `ones`
    /// counts — one popcount stream instead of [`pair_counts`]' three.
    /// Columns that are never infected (`ones = 0`) or always infected
    /// (`ones = β`) short-circuit before the word loop: their joint counts
    /// are a pure function of the partner's ones count.
    ///
    /// Counts are bit-identical to [`pair_counts`] for every pair, under
    /// every dispatch tier.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ones` was not produced by
    /// [`ones_counts`] on this view, or if a range end exceeds the node
    /// count.
    ///
    /// [`pair_counts`]: NodeColumns::pair_counts
    /// [`pair_tile_size`]: NodeColumns::pair_tile_size
    /// [`ones_counts`]: NodeColumns::ones_counts
    // `j` is a node id (fed to `emit` and `col`), not just an index into
    // `ones` — the iterator rewrite clippy suggests would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn pair_counts_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
        ones: &[u64],
        emit: &mut impl FnMut(NodeId, NodeId, PairCounts),
    ) {
        debug_assert_eq!(ones.len(), self.num_nodes());
        debug_assert!(rows.end <= self.num_nodes() && cols.end <= self.num_nodes());
        let k = crate::simd::kernels();
        let beta = self.beta as u64;
        // Counts of a pair where one column is degenerate, from the other
        // column's ones count alone (no word loop).
        let degenerate = |ones_deg: u64, ones_other: u64| {
            let n11 = if ones_deg == 0 { 0 } else { ones_other };
            PairCounts {
                n11,
                n10: ones_deg - n11,
                n01: ones_other - n11,
                // `+ n11` first: `ones_deg + ones_other` may exceed `β`.
                n00: beta + n11 - ones_deg - ones_other,
            }
        };
        for i in rows {
            let oi = ones[i];
            let j_lo = cols.start.max(i + 1);
            if oi == 0 || oi == beta {
                for j in j_lo..cols.end {
                    // NB: `degenerate(oi, ·)` treats `i` as the degenerate
                    // side; n10/n01 come out in (i, j) orientation.
                    emit(i as NodeId, j as NodeId, degenerate(oi, ones[j]));
                }
                continue;
            }
            let ci = self.col(i as NodeId);
            for j in j_lo..cols.end {
                let oj = ones[j];
                if oj == 0 || oj == beta {
                    let d = degenerate(oj, oi);
                    emit(
                        i as NodeId,
                        j as NodeId,
                        PairCounts {
                            n11: d.n11,
                            n10: d.n01,
                            n01: d.n10,
                            n00: d.n00,
                        },
                    );
                    continue;
                }
                let cj = self.col(j as NodeId);
                let n11 = k.and_popcount(ci, cj);
                emit(
                    i as NodeId,
                    j as NodeId,
                    PairCounts {
                        n11,
                        n10: oi - n11,
                        n01: oj - n11,
                        n00: beta + n11 - oi - oj,
                    },
                );
            }
        }
    }

    /// Counts `N_ijk` for child `i` with ordered parent set `parents`,
    /// word-parallel.
    ///
    /// Semantics are identical to [`StatusMatrix::combo_counts`] (entry `j`
    /// of the result is `[N_ij1, N_ij2]`, parent `t`'s status is bit `t` of
    /// `j`), but the combination table is built by recursive bitset
    /// intersection: for `f` parents the cost is `O(2^f · ⌈β/64⌉)` word
    /// operations instead of `O(β · f)` bit probes. This is the scoring
    /// hot path of TENDS.
    ///
    /// # Errors
    ///
    /// Returns [`ComboSizeError`] if `parents.len()` exceeds
    /// [`MAX_TABULATED_PARENTS`].
    pub fn combo_counts(
        &self,
        child: NodeId,
        parents: &[NodeId],
    ) -> Result<Vec<[u64; 2]>, ComboSizeError> {
        check_combo_size(parents.len())?;
        let words = self.words_per_col;
        let mut counts = vec![[0u64; 2]; 1usize << parents.len()];
        // One arena allocation holds the root mask plus a (zero, one) mask
        // pair per recursion level; the per-branch vector allocations it
        // replaces dominated the cost of tabulating small candidate sets
        // in bulk (checkpoint tables build one per node).
        let mut arena = vec![0u64; words + 2 * words * parents.len()];
        let (root, rest) = arena.split_at_mut(words);
        self.root_mask_into(root);
        self.combo_rec(child, parents, 0, 0, root, rest, &mut counts);
        Ok(counts)
    }

    #[allow(clippy::too_many_arguments)]
    fn combo_rec(
        &self,
        child: NodeId,
        parents: &[NodeId],
        depth: usize,
        index: usize,
        mask: &[u64],
        arena: &mut [u64],
        counts: &mut [[u64; 2]],
    ) {
        if depth == parents.len() {
            let (infected, total) = crate::simd::kernels().and_self_popcount(mask, self.col(child));
            counts[index] = [total - infected, infected];
            return;
        }
        // Prune empty branches: every deeper combination has N_ij = 0,
        // which is what the zero-initialized table already says.
        if mask.iter().all(|&m| m == 0) {
            return;
        }
        let words = mask.len();
        let pcol = self.col(parents[depth]);
        let (cur, rest) = arena.split_at_mut(2 * words);
        let (zero, one) = cur.split_at_mut(words);
        zero.copy_from_slice(mask);
        one.fill(0);
        crate::simd::kernels().refine_masks(zero, one, pcol);
        self.combo_rec(child, parents, depth + 1, index, zero, rest, counts);
        self.combo_rec(
            child,
            parents,
            depth + 1,
            index | (1 << depth),
            one,
            rest,
            counts,
        );
    }

    /// Writes the all-ones mask over the `β` valid process bits into `out`.
    fn root_mask_into(&self, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.words_per_col);
        out.fill(u64::MAX);
        if !self.beta.is_multiple_of(WORD_BITS) {
            out[self.words_per_col - 1] = (1u64 << (self.beta % WORD_BITS)) - 1;
        }
        if self.beta == 0 {
            out[self.words_per_col - 1] = 0;
        }
    }

    /// Joint counts for the pair `(i, j)` over all `β` processes.
    pub fn pair_counts(&self, i: NodeId, j: NodeId) -> PairCounts {
        let (ci, cj) = (self.col(i), self.col(j));
        let mut n11 = 0u64;
        let mut ones_i = 0u64;
        let mut ones_j = 0u64;
        for (wi, wj) in ci.iter().zip(cj) {
            n11 += (wi & wj).count_ones() as u64;
            ones_i += wi.count_ones() as u64;
            ones_j += wj.count_ones() as u64;
        }
        let n10 = ones_i - n11;
        let n01 = ones_j - n11;
        let n00 = self.beta as u64 - n11 - n10 - n01;
        PairCounts { n11, n10, n01, n00 }
    }
}

/// In-place transpose of a 64×64 bit matrix (`a[r]` bit `c` ⇄ `a[c]` bit
/// `r`, both little-endian): the Hacker's Delight butterfly network, six
/// rounds of swapping `2^k × 2^k` sub-blocks entirely in registers.
fn transpose64(a: &mut [u64; WORD_BITS]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < WORD_BITS {
            let t = ((a[k] >> j) ^ a[k + j]) & mask;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Reusable scratch state for incremental `N_ijk` counting.
///
/// The greedy parent search evaluates `g(v_i, F ∪ W)` for one fixed base set
/// `F` and many small extensions `W` per round. The recursive kernel
/// ([`NodeColumns::combo_counts`]) rebuilds the whole partition tree — and
/// allocates two mask vectors per tree node — on every call. This workspace
/// instead *instantiates* `F`'s partition once per round ([`set_base`]) as a
/// flat arena of `2^|F|` process-bitset masks, and each evaluation
/// ([`refined_counts`]) only refines that cached partition along `W`'s
/// nodes. All buffers are retained across calls, so steady-state evaluation
/// performs no allocations.
///
/// Counts are **bit-identical** to `cols.combo_counts(child, &union)` where
/// `union` is the sorted merge of the base and extension sets: entry `j` of
/// the result indexes parent combinations by the sorted-union bit order
/// (parent `t` of the union contributes bit `t`), exactly like the other
/// two kernels. Identical table order means downstream floating-point score
/// sums visit terms in the same order and reproduce the same bits.
///
/// [`set_base`]: CountsWorkspace::set_base
/// [`refined_counts`]: CountsWorkspace::refined_counts
#[derive(Clone, Debug, Default)]
pub struct CountsWorkspace {
    /// The cached base parent set `F` (sorted, deduplicated).
    base_parents: Vec<NodeId>,
    /// `2^|F|` masks of `words` words each; entry `j` holds the processes
    /// whose `F`-statuses form combination `j` (base-order bits).
    base: Vec<u64>,
    /// Refinement arena: `2^(|F|+|W|)` masks during an evaluation.
    scratch: Vec<u64>,
    /// Output table, in sorted-union combination order.
    counts: Vec<[u64; 2]>,
    /// Per-base-entry `[infected, total]` counts shared across a batched
    /// single-extension pass
    /// ([`refined_counts_single_batch`](Self::refined_counts_single_batch)).
    batch_counts: Vec<[u64; 2]>,
    /// Bit position in the sorted union for each source bit (base bits
    /// first, then extension bits).
    bit_pos: Vec<u32>,
    /// Words per process-bitset column; fixed by the `NodeColumns` that the
    /// base was instantiated from.
    words: usize,
    /// Cumulative [`refined_counts`](Self::refined_counts) calls.
    refine_calls: u64,
    /// Cumulative [`set_base`](Self::set_base) calls (full recounts).
    rebase_calls: u64,
}

/// Cumulative call counts of one [`CountsWorkspace`], distinguishing cheap
/// incremental refinements from full base recounts — the ratio is the
/// whole point of the incremental engine, so runs report both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// [`CountsWorkspace::refined_counts`] calls (incremental refinements).
    pub refinements: u64,
    /// [`CountsWorkspace::set_base`] calls (full partition recounts).
    pub rebases: u64,
}

impl CountsWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        CountsWorkspace::default()
    }

    /// Instantiates the partition of `parents` (the round's base set `F`)
    /// over `cols`, replacing any previous base.
    ///
    /// `parents` must be sorted and duplicate-free — the invariant the
    /// greedy search maintains for its accepted parent set.
    ///
    /// # Errors
    ///
    /// Returns [`ComboSizeError`] if `parents.len()` exceeds
    /// [`MAX_TABULATED_PARENTS`].
    ///
    /// # Panics
    ///
    /// Panics if `parents` is unsorted or duplicated (a programmer-contract
    /// violation, unlike the size limit which hostile inputs can reach).
    pub fn set_base(
        &mut self,
        cols: &NodeColumns,
        parents: &[NodeId],
    ) -> Result<(), ComboSizeError> {
        assert!(
            parents.windows(2).all(|w| w[0] < w[1]),
            "base parent set must be sorted and duplicate-free"
        );
        check_combo_size(parents.len())?;
        self.rebase_calls += 1;
        self.words = cols.words_per_col;
        self.base_parents.clear();
        self.base_parents.extend_from_slice(parents);
        self.base.resize((1usize << parents.len()) * self.words, 0);
        cols.root_mask_into(&mut self.base[..self.words]);
        for (t, &p) in parents.iter().enumerate() {
            Self::refine_level(&mut self.base, cols.col(p), 1usize << t, self.words);
        }
        Ok(())
    }

    /// The cached base parent set.
    pub fn base_parents(&self) -> &[NodeId] {
        &self.base_parents
    }

    /// Cumulative refine/rebase call counts since construction.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            refinements: self.refine_calls,
            rebases: self.rebase_calls,
        }
    }

    /// Splits each of the first `len` masks in `arena` along parent column
    /// `pcol`: the zero-half stays at entry `e`, the one-half lands at
    /// `len + e`. Each word is read before either half is written, so the
    /// doubling is safely in place.
    fn refine_level(arena: &mut [u64], pcol: &[u64], len: usize, words: usize) {
        debug_assert!(arena.len() >= 2 * len * words);
        let k = crate::simd::kernels();
        let (lo, hi) = arena.split_at_mut(len * words);
        for e in 0..len {
            let src = &mut lo[e * words..(e + 1) * words];
            let dst = &mut hi[e * words..(e + 1) * words];
            k.refine_masks(src, dst, pcol);
        }
    }

    /// Counts `N_ijk` for `child` under the parent set `F ∪ extra`,
    /// refining the cached base partition along `extra`'s nodes only.
    ///
    /// `extra` must be sorted, duplicate-free and disjoint from the base
    /// set. The returned table is indexed by sorted-union combination
    /// order and is bit-identical to
    /// `cols.combo_counts(child, &sorted_union)`.
    ///
    /// # Errors
    ///
    /// Returns [`ComboSizeError`] if the union exceeds
    /// [`MAX_TABULATED_PARENTS`] nodes.
    ///
    /// # Panics
    ///
    /// Panics if `extra` violates the ordering/disjointness contract or if
    /// `cols` has a different process count than the base was instantiated
    /// from.
    pub fn refined_counts(
        &mut self,
        cols: &NodeColumns,
        child: NodeId,
        extra: &[NodeId],
    ) -> Result<&[[u64; 2]], ComboSizeError> {
        assert_eq!(
            self.words, cols.words_per_col,
            "workspace base was instantiated from a different matrix shape"
        );
        assert!(
            extra.windows(2).all(|w| w[0] < w[1]),
            "extension set must be sorted and duplicate-free"
        );
        assert!(
            extra
                .iter()
                .all(|p| self.base_parents.binary_search(p).is_err()),
            "extension set must be disjoint from the base parent set"
        );
        let f = self.base_parents.len();
        let w = extra.len();
        check_combo_size(f + w)?;
        self.refine_calls += 1;

        // Refine the cached base partition along the extension nodes.
        self.scratch.resize((1usize << (f + w)) * self.words, 0);
        self.scratch[..self.base.len()].copy_from_slice(&self.base);
        for (t, &p) in extra.iter().enumerate() {
            Self::refine_level(
                &mut self.scratch,
                cols.col(p),
                1usize << (f + t),
                self.words,
            );
        }

        // Map each source bit (base order, then extension order) to its
        // position in the sorted union. Both inputs are sorted and
        // disjoint, so a linear merge assigns positions.
        self.bit_pos.resize(f + w, 0);
        let (mut bi, mut wi) = (0usize, 0usize);
        for pos in 0..f + w {
            let take_base = wi >= w || (bi < f && self.base_parents[bi] < extra[wi]);
            if take_base {
                self.bit_pos[bi] = pos as u32;
                bi += 1;
            } else {
                self.bit_pos[f + wi] = pos as u32;
                wi += 1;
            }
        }

        // Tabulate. Entry `e` of the arena (extension bits above base bits)
        // scatters to union index `j`; the map is a bit permutation, so
        // every `j` is written exactly once.
        self.counts.resize(1usize << (f + w), [0, 0]);
        let k = crate::simd::kernels();
        let ccol = cols.col(child);
        for e in 0..1usize << (f + w) {
            let mask = &self.scratch[e * self.words..(e + 1) * self.words];
            let (infected, total) = k.and_self_popcount(mask, ccol);
            let mut j = 0usize;
            for (t, &pos) in self.bit_pos.iter().enumerate() {
                j |= ((e >> t) & 1) << pos;
            }
            self.counts[j] = [total - infected, infected];
        }
        Ok(&self.counts)
    }

    /// Counts `N_ijk` for `child` under every single-node extension
    /// `F ∪ {extras[t]}` in one streaming pass over the cached base
    /// partition, without materializing any refined arena.
    ///
    /// For each base-partition entry the kernel computes the entry's
    /// `(infected, total)` once, then for every candidate one fused
    /// AND³+popcount pass yields the candidate-infected half; the
    /// candidate-uninfected half follows by subtraction. The zero-copy
    /// pass replaces `extras.len()` arena copy+refine+tabulate cycles, so
    /// the base masks are read once per candidate *group* instead of once
    /// per candidate evaluation step — and the per-extension tables are
    /// bit-identical to [`refined_counts`](Self::refined_counts) with the
    /// same single-node extension (each counts once toward the
    /// [`refinements`](WorkspaceStats::refinements) stat, preserving the
    /// sequential accounting).
    ///
    /// `sink` receives `(t, counts)` for each extension index `t` in
    /// order; the table is indexed by sorted-union combination order,
    /// exactly like `refined_counts(cols, child, &[extras[t]])`.
    ///
    /// # Panics
    ///
    /// Panics under the same contract as `refined_counts`: each extra
    /// must be absent from the base set, `cols` must match the shape the
    /// base was instantiated from, and the unions `F ∪ {p}` must fit
    /// [`MAX_TABULATED_PARENTS`] (the greedy search caps parent sets far
    /// below the limit, so unlike the fallible kernels this is a
    /// programmer contract, not reachable from hostile input).
    pub fn refined_counts_single_batch(
        &mut self,
        cols: &NodeColumns,
        child: NodeId,
        extras: &[NodeId],
        mut sink: impl FnMut(usize, &[[u64; 2]]),
    ) {
        if extras.is_empty() {
            return;
        }
        assert_eq!(
            self.words, cols.words_per_col,
            "workspace base was instantiated from a different matrix shape"
        );
        assert!(
            extras
                .iter()
                .all(|p| self.base_parents.binary_search(p).is_err()),
            "extension nodes must be disjoint from the base parent set"
        );
        let f = self.base_parents.len();
        assert!(
            f < MAX_TABULATED_PARENTS,
            "single-node extensions of a {f}-parent base exceed the combination table limit"
        );
        self.refine_calls += extras.len() as u64;

        let k = crate::simd::kernels();
        let ccol = cols.col(child);
        // Shared per-entry counts of the unrefined base partition.
        self.batch_counts.resize(1usize << f, [0, 0]);
        for e in 0..1usize << f {
            let mask = &self.base[e * self.words..(e + 1) * self.words];
            let (infected, total) = k.and_self_popcount(mask, ccol);
            self.batch_counts[e] = [infected, total];
        }
        self.counts.resize(1usize << (f + 1), [0, 0]);
        for (t, &p) in extras.iter().enumerate() {
            // The new parent's bit position in the sorted union F ∪ {p}.
            let pos = self.base_parents.partition_point(|&b| b < p);
            let pcol = cols.col(p);
            for e in 0..1usize << f {
                let mask = &self.base[e * self.words..(e + 1) * self.words];
                let [i_e, t_e] = self.batch_counts[e];
                let (mw, mwc) = k.and3_popcount(mask, pcol, ccol);
                // Splice the new parent's bit into the base combination
                // index: bits below `pos` keep their place, bits at or
                // above shift up by one.
                let j0 = (e & ((1usize << pos) - 1)) | ((e >> pos) << (pos + 1));
                let j1 = j0 | (1usize << pos);
                self.counts[j1] = [mw - mwc, mwc];
                self.counts[j0] = [(t_e - i_e) - (mw - mwc), i_e - mwc];
            }
            sink(t, &self.counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusMatrix {
        StatusMatrix::from_rows(&[
            vec![true, false, true],
            vec![true, true, false],
            vec![false, false, false],
            vec![true, true, true],
        ])
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = StatusMatrix::new(3, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.get(0, 0) && m.get(1, 64) && m.get(2, 129));
        assert!(!m.get(0, 1) && !m.get(1, 63) && !m.get(2, 128));
    }

    #[test]
    fn from_rows_matches_get() {
        let m = sample();
        assert_eq!(m.num_processes(), 4);
        assert_eq!(m.num_nodes(), 3);
        assert!(m.get(0, 0) && !m.get(0, 1) && m.get(0, 2));
        assert!(!m.get(2, 0) && !m.get(2, 1) && !m.get(2, 2));
    }

    #[test]
    fn per_process_and_per_node_counts() {
        let m = sample();
        assert_eq!(m.infected_in_process(0), 2);
        assert_eq!(m.infected_in_process(2), 0);
        assert_eq!(m.infection_count(0), 3);
        assert_eq!(m.infection_count(1), 2);
        assert_eq!(m.infection_count(2), 2);
    }

    #[test]
    fn infected_fraction() {
        let m = sample();
        assert!((m.infected_fraction() - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(StatusMatrix::new(0, 0).infected_fraction(), 0.0);
    }

    #[test]
    fn combo_counts_empty_parent_set() {
        let m = sample();
        let c = m.combo_counts(0, &[]).expect("small parent set");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], [1, 3]); // node 0 uninfected once, infected 3 times
    }

    #[test]
    fn combo_counts_single_parent() {
        let m = sample();
        // child = 2, parent = 1. Processes: (p1, c2) = (0,1),(1,0),(0,0),(1,1)
        let c = m.combo_counts(2, &[1]).expect("small parent set");
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], [1, 1]); // parent 0: child 0 once (row 2), child 1 once (row 0)
        assert_eq!(c[1], [1, 1]); // parent 1: child 0 once (row 1), child 1 once (row 3)
    }

    #[test]
    fn combo_counts_two_parents_bit_order() {
        let m = sample();
        // child = 2, parents = [0, 1]: bit 0 is node 0's status, bit 1 node 1's.
        let c = m.combo_counts(2, &[0, 1]).expect("small parent set");
        assert_eq!(c.len(), 4);
        // rows: (s0,s1,s2) = (1,0,1),(1,1,0),(0,0,0),(1,1,1)
        assert_eq!(c[0b00], [1, 0]); // row 2
        assert_eq!(c[0b01], [0, 1]); // row 0
        assert_eq!(c[0b10], [0, 0]);
        assert_eq!(c[0b11], [1, 1]); // rows 1 and 3
        let total: u64 = c.iter().map(|kc| kc[0] + kc[1]).sum();
        assert_eq!(total, m.num_processes() as u64, "ΣN_ij = β");
    }

    #[test]
    fn pair_counts_agree_with_bruteforce() {
        let m = sample();
        let cols = m.columns();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let pc = cols.pair_counts(i, j);
                let mut expect = PairCounts {
                    n11: 0,
                    n10: 0,
                    n01: 0,
                    n00: 0,
                };
                for l in 0..m.num_processes() {
                    match (m.get(l, i), m.get(l, j)) {
                        (true, true) => expect.n11 += 1,
                        (true, false) => expect.n10 += 1,
                        (false, true) => expect.n01 += 1,
                        (false, false) => expect.n00 += 1,
                    }
                }
                assert_eq!(pc, expect, "pair ({i},{j})");
                assert_eq!(pc.total(), 4);
            }
        }
    }

    #[test]
    fn columns_across_word_boundary() {
        // β = 70 crosses the 64-bit word boundary in the column bitsets.
        let mut m = StatusMatrix::new(70, 2);
        for l in 0..70 {
            if l % 2 == 0 {
                m.set(l, 0);
            }
            if l % 3 == 0 {
                m.set(l, 1);
            }
        }
        let cols = m.columns();
        assert_eq!(cols.ones(0), 35);
        assert_eq!(cols.ones(1), 24);
        let pc = cols.pair_counts(0, 1);
        assert_eq!(
            pc.n11,
            (0..70).filter(|l| l % 2 == 0 && l % 3 == 0).count() as u64
        );
        assert_eq!(pc.total(), 70);
    }

    #[test]
    fn column_combo_counts_match_row_combo_counts() {
        // Randomized cross-check of the two N_ijk kernels, across a word
        // boundary in β.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let beta = 100;
        let n = 10;
        let mut m = StatusMatrix::new(beta, n);
        for l in 0..beta {
            for i in 0..n {
                if next() % 3 == 0 {
                    m.set(l, i as NodeId);
                }
            }
        }
        let cols = m.columns();
        for parents in [
            vec![],
            vec![1],
            vec![3, 7],
            vec![0, 2, 5],
            vec![1, 4, 6, 9],
            vec![0, 1, 2, 3, 4],
        ] {
            let child = 8;
            assert_eq!(
                cols.combo_counts(child, &parents).expect("small"),
                m.combo_counts(child, &parents).expect("small"),
                "parents {parents:?}"
            );
        }
    }

    fn random_matrix(beta: usize, n: usize, seed: u64) -> StatusMatrix {
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut m = StatusMatrix::new(beta, n);
        for l in 0..beta {
            for i in 0..n {
                if next() % 3 == 0 {
                    m.set(l, i as NodeId);
                }
            }
        }
        m
    }

    #[test]
    fn workspace_counts_match_recursive_kernel() {
        // β = 100 crosses the word boundary; exercise base/extension splits
        // whose sorted unions interleave both ways.
        let m = random_matrix(100, 12, 0x9E3779B97F4A7C15);
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        let cases: &[(&[NodeId], &[NodeId])] = &[
            (&[], &[]),
            (&[], &[4]),
            (&[2], &[]),
            (&[2], &[0]),
            (&[2], &[7]),
            (&[1, 5], &[3, 9]),
            (&[0, 4, 8], &[2, 6, 10]),
            (&[3, 4, 5], &[0, 1, 2]),
            (&[0, 1, 2], &[9, 10, 11]),
        ];
        for &(base, extra) in cases {
            ws.set_base(&cols, base).expect("small base");
            let mut union: Vec<NodeId> = base.iter().chain(extra).copied().collect();
            union.sort_unstable();
            let got = ws
                .refined_counts(&cols, 11, extra)
                .expect("small union")
                .to_vec();
            assert_eq!(
                got,
                cols.combo_counts(11, &union).expect("small"),
                "base {base:?} extra {extra:?}"
            );
        }
    }

    #[test]
    fn workspace_reuse_across_rounds_and_shrinking_sets() {
        // One workspace driven the way the greedy search drives it: bases
        // that grow, then shrink, with varying extension widths in between.
        let m = random_matrix(70, 10, 0xDEADBEEFCAFE1234);
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        let rounds: &[&[NodeId]] = &[&[], &[3], &[3, 6], &[1, 3, 6], &[6]];
        for &base in rounds {
            ws.set_base(&cols, base).expect("small base");
            assert_eq!(ws.base_parents(), base);
            for extra in [vec![], vec![0], vec![0, 9], vec![2, 4, 9]] {
                if extra.iter().any(|p| base.contains(p)) {
                    continue;
                }
                let mut union: Vec<NodeId> = base.iter().chain(&extra).copied().collect();
                union.sort_unstable();
                for child in [5u32, 8] {
                    let got = ws
                        .refined_counts(&cols, child, &extra)
                        .expect("small union")
                        .to_vec();
                    assert_eq!(
                        got,
                        cols.combo_counts(child, &union).expect("small"),
                        "base {base:?} extra {extra:?} child {child}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_single_extensions_match_refined_counts() {
        // The batched pass must reproduce `refined_counts` bit-for-bit for
        // every candidate, with bases that interleave the candidates both
        // ways, and charge one refinement per candidate.
        let m = random_matrix(100, 12, 0x1357_9BDF_2468_ACE0);
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        let mut oracle = CountsWorkspace::new();
        let cases: &[(&[NodeId], &[NodeId])] = &[
            (&[], &[0]),
            (&[], &[4, 7, 11]),
            (&[5], &[0, 6, 9]),
            (&[2, 8], &[0, 3, 5, 10, 11]),
            (&[0, 1, 2], &[3, 7, 9]),
            (&[4, 6, 10], &[0, 5, 11]),
        ];
        for &(base, extras) in cases {
            ws.set_base(&cols, base).expect("small base");
            oracle.set_base(&cols, base).expect("small base");
            let before = ws.stats().refinements;
            let mut seen = 0usize;
            ws.refined_counts_single_batch(&cols, 11, extras, |t, counts| {
                let expect = oracle
                    .refined_counts(&cols, 11, &[extras[t]])
                    .expect("small union");
                assert_eq!(counts, expect, "base {base:?} extra {}", extras[t]);
                seen += 1;
            });
            assert_eq!(seen, extras.len());
            assert_eq!(ws.stats().refinements, before + extras.len() as u64);
        }
        // Empty batches do nothing and charge nothing.
        let before = ws.stats().refinements;
        ws.refined_counts_single_batch(&cols, 11, &[], |_, _| panic!("no extras"));
        assert_eq!(ws.stats().refinements, before);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn batched_extensions_reject_base_overlap() {
        let m = sample();
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        ws.set_base(&cols, &[1]).expect("small base");
        ws.refined_counts_single_batch(&cols, 2, &[0, 1], |_, _| {});
    }

    #[test]
    fn workspace_zero_beta() {
        let m = StatusMatrix::new(0, 4);
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        ws.set_base(&cols, &[1]).expect("small base");
        assert_eq!(
            ws.refined_counts(&cols, 0, &[2]).expect("small union"),
            &[[0, 0]; 4]
        );
    }

    #[test]
    fn workspace_stats_count_rebases_and_refinements() {
        let m = sample();
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        assert_eq!(ws.stats(), WorkspaceStats::default());
        ws.set_base(&cols, &[]).expect("empty base");
        ws.refined_counts(&cols, 2, &[0]).expect("small");
        ws.refined_counts(&cols, 2, &[1]).expect("small");
        ws.set_base(&cols, &[0]).expect("small base");
        ws.refined_counts(&cols, 2, &[1]).expect("small");
        let stats = ws.stats();
        assert_eq!(stats.rebases, 2);
        assert_eq!(stats.refinements, 3);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn workspace_rejects_overlapping_extension() {
        let m = sample();
        let cols = m.columns();
        let mut ws = CountsWorkspace::new();
        ws.set_base(&cols, &[1]).expect("small base");
        let _ = ws.refined_counts(&cols, 2, &[1]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn workspace_rejects_unsorted_base() {
        let m = sample();
        let cols = m.columns();
        let _ = CountsWorkspace::new().set_base(&cols, &[2, 1]);
    }

    #[test]
    fn column_combo_counts_zero_beta() {
        let m = StatusMatrix::new(0, 4);
        let cols = m.columns();
        assert_eq!(
            cols.combo_counts(0, &[1, 2]).expect("small"),
            vec![[0, 0]; 4]
        );
    }

    #[test]
    fn combo_counts_rejects_huge_parent_sets_with_typed_error() {
        let m = StatusMatrix::new(1, 30);
        let parents: Vec<NodeId> = (0..26).collect();
        let err = m.combo_counts(29, &parents).unwrap_err();
        assert_eq!(err, ComboSizeError { parents: 26 });
        assert!(err.to_string().contains("too large"));
        let cols = m.columns();
        assert_eq!(cols.combo_counts(29, &parents).unwrap_err(), err);
        let mut ws = CountsWorkspace::new();
        assert_eq!(ws.set_base(&cols, &parents).unwrap_err(), err);
        // A base/extension split whose union crosses the limit errors too,
        // without counting the failed call as a refinement.
        ws.set_base(&cols, &parents[..20]).expect("20 fits");
        let rebases_before = ws.stats();
        assert_eq!(
            ws.refined_counts(&cols, 29, &parents[20..]).unwrap_err(),
            err
        );
        assert_eq!(ws.stats().refinements, rebases_before.refinements);
    }

    #[test]
    fn zero_size_matrices() {
        let m = StatusMatrix::new(0, 0);
        assert_eq!(m.num_processes(), 0);
        assert_eq!(m.columns().num_nodes(), 0);
        let m2 = StatusMatrix::new(5, 0);
        assert_eq!(m2.infected_fraction(), 0.0);
    }

    /// A deterministic pseudo-random matrix with planted degenerate columns.
    fn scrambled(beta: usize, n: usize) -> StatusMatrix {
        let mut m = StatusMatrix::new(beta, n);
        let mut state = 0x9e3779b97f4a7c15u64 ^ (beta as u64) << 32 ^ n as u64;
        for l in 0..beta {
            for i in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Node 0 never infected, nodes 1, 2 always infected
                // (degenerate pair on both sides), and the last node
                // always infected so upper-triangle pairs also hit the
                // j-degenerate branch with a non-degenerate i.
                let infected = if i == 0 {
                    false
                } else if i == 1 || i == 2 || i + 1 == n {
                    true
                } else {
                    state >> 33 & 1 == 1
                };
                if infected {
                    m.set(l, i as NodeId);
                }
            }
        }
        m
    }

    #[test]
    fn ones_counts_match_per_node_ones() {
        let cols = scrambled(70, 9).columns();
        let ones = cols.ones_counts();
        assert_eq!(ones.len(), 9);
        for i in 0..9u32 {
            assert_eq!(ones[i as usize], cols.ones(i));
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 70);
        assert_eq!(ones[8], 70);
    }

    #[test]
    fn pair_tile_size_tracks_column_footprint() {
        // β = 150 → 3 words/col, lane-padded to 32 B → ⌊32768 / 64⌋ = 512.
        assert_eq!(StatusMatrix::new(150, 4).columns().pair_tile_size(), 512);
        // Tiny β also occupies one full 32-byte lane group per column.
        assert_eq!(StatusMatrix::new(8, 4).columns().pair_tile_size(), 512);
        // β = 65_536 → 1024 words/col → 2 tile columns fit in 32 KiB.
        // The lower clamp keeps tiles from degenerating to single columns.
        assert_eq!(StatusMatrix::new(65_536, 2).columns().pair_tile_size(), 16);
        // β = 2051 → 33 words, lane-padded to 36 → 56, aligned down to 48.
        assert_eq!(StatusMatrix::new(2051, 2).columns().pair_tile_size(), 48);
        // Every tile side lands on a 16-column boundary.
        for beta in [1usize, 100, 999, 4097, 30_000] {
            let t = StatusMatrix::new(beta, 2).columns().pair_tile_size();
            assert_eq!(t % 16, 0, "beta {beta} tile {t}");
            assert!((16..=1024).contains(&t), "beta {beta} tile {t}");
        }
    }

    #[test]
    fn blocked_transpose_matches_bit_probes() {
        // β and n both straddle several 64×64 transpose tiles, with ragged
        // edges on both axes; verify every column bit against the
        // row-major source.
        let m = scrambled(193, 131);
        let cols = m.columns();
        for i in 0..131u32 {
            let col = &cols.cols
                [(i as usize) * cols.words_per_col..(i as usize + 1) * cols.words_per_col];
            for l in 0..193usize {
                let bit = (col[l / WORD_BITS] >> (l % WORD_BITS)) & 1 == 1;
                assert_eq!(bit, m.get(l, i), "process {l} node {i}");
            }
            // Padding bits above β stay clear.
            for l in 193..cols.words_per_col * WORD_BITS {
                assert_eq!((col[l / WORD_BITS] >> (l % WORD_BITS)) & 1, 0);
            }
        }
    }

    #[test]
    fn transpose64_is_an_involution_and_transposes() {
        let mut a = [0u64; WORD_BITS];
        let mut state = 0xA5A5_5A5A_DEAD_BEEFu64;
        for w in a.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = state;
        }
        let orig = a;
        transpose64(&mut a);
        for (r, row) in orig.iter().enumerate() {
            for (c, col) in a.iter().enumerate() {
                assert_eq!((col >> r) & 1, (row >> c) & 1, "({r},{c})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    /// All pairs of the upper triangle via the tiled kernel, walked in
    /// `tile`-sized blocks like the production caller.
    fn tiled_pairs(cols: &NodeColumns, tile: usize) -> Vec<(NodeId, NodeId, PairCounts)> {
        let n = cols.num_nodes();
        let ones = cols.ones_counts();
        let mut out = Vec::new();
        for jb in (0..n).step_by(tile) {
            let j_hi = (jb + tile).min(n);
            for ib in (0..j_hi).step_by(tile) {
                let i_hi = (ib + tile).min(j_hi);
                cols.pair_counts_block(ib..i_hi, jb..j_hi, &ones, &mut |i, j, c| {
                    out.push((i, j, c));
                });
            }
        }
        out.sort_unstable_by_key(|&(i, j, _)| (i, j));
        out
    }

    #[test]
    fn tiled_pair_counts_match_per_pair_kernel() {
        // β values straddle word boundaries: 63/64/65 probe tail-word
        // masking, 1 and 130 probe tiny and multi-word columns.
        for beta in [1usize, 63, 64, 65, 130] {
            let cols = scrambled(beta, 13).columns();
            for tile in [1usize, 3, 16] {
                let got = tiled_pairs(&cols, tile);
                assert_eq!(got.len(), 13 * 12 / 2, "beta {beta} tile {tile}");
                for (i, j, c) in got {
                    assert_eq!(
                        c,
                        cols.pair_counts(i, j),
                        "beta {beta} tile {tile} pair ({i},{j})"
                    );
                    assert_eq!(c.total(), beta as u64);
                }
            }
        }
    }

    #[test]
    fn tiled_kernel_degenerate_columns() {
        // scrambled() plants never-infected node 0 and always-infected
        // nodes 1, 2 — every degenerate short-circuit branch fires:
        // i-degenerate, j-degenerate, and both-degenerate (1,2).
        let beta = 97u64;
        let cols = scrambled(beta as usize, 6).columns();
        let pairs = tiled_pairs(&cols, 4);
        for &(i, j, c) in &pairs {
            assert_eq!(c, cols.pair_counts(i, j), "pair ({i},{j})");
        }
        let at = |i: NodeId, j: NodeId| pairs.iter().find(|p| (p.0, p.1) == (i, j)).unwrap().2;
        // Never-infected × always-infected: all mass in n01.
        assert_eq!(
            at(0, 1),
            PairCounts {
                n11: 0,
                n10: 0,
                n01: beta,
                n00: 0
            }
        );
        // Always-infected × always-infected: all mass in n11.
        assert_eq!(
            at(1, 2),
            PairCounts {
                n11: beta,
                n10: 0,
                n01: 0,
                n00: 0
            }
        );
        // Never-infected × random j: n11 = n10 = 0, n01 = ones(j).
        let c03 = at(0, 3);
        assert_eq!((c03.n11, c03.n10), (0, 0));
        assert_eq!(c03.n01, cols.ones(3));
        // Random i × always-infected j (node 5 is planted always-on):
        // the j-degenerate branch, reached with a non-degenerate i.
        let c35 = at(3, 5);
        assert_eq!((c35.n10, c35.n00), (0, 0));
        assert_eq!(c35.n11, cols.ones(3));
        assert_eq!(c35.n01, beta - cols.ones(3));
    }

    #[test]
    fn tiled_kernel_empty_ranges_emit_nothing() {
        let cols = scrambled(40, 5).columns();
        let ones = cols.ones_counts();
        let mut calls = 0usize;
        cols.pair_counts_block(0..0, 0..5, &ones, &mut |_, _, _| calls += 1);
        cols.pair_counts_block(0..5, 5..5, &ones, &mut |_, _, _| calls += 1);
        // A block strictly below the diagonal emits nothing (i < j filter).
        cols.pair_counts_block(3..5, 0..2, &ones, &mut |_, _, _| calls += 1);
        assert_eq!(calls, 0);
    }
}
