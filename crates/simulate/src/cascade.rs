//! Per-process diffusion records and the bundled observation set.

use crate::StatusMatrix;
use diffnet_graph::NodeId;

/// Sentinel infection time for nodes that were never infected in a process.
pub const UNINFECTED: u32 = u32::MAX;

/// Everything observable about one diffusion process.
///
/// TENDS only uses the final statuses (available via the parent
/// [`ObservationSet::statuses`] matrix); the seed set is what LIFT consumes,
/// and the infection rounds form the *cascade* consumed by timestamp-based
/// baselines (NetRate, MulTree, NetInf).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffusionRecord {
    /// Initially infected nodes (infection round 0), sorted.
    pub sources: Vec<NodeId>,
    /// Infection round per node; seeds have 0, uninfected nodes
    /// [`UNINFECTED`].
    pub times: Vec<u32>,
}

impl DiffusionRecord {
    /// Whether node `i` ended up infected.
    #[inline]
    pub fn infected(&self, i: NodeId) -> bool {
        self.times[i as usize] != UNINFECTED
    }

    /// Whether node `i` was a seed.
    #[inline]
    pub fn is_source(&self, i: NodeId) -> bool {
        self.sources.binary_search(&i).is_ok()
    }

    /// Infected nodes ordered by infection round (seeds first), ties broken
    /// by node id — the *cascade* of this process.
    pub fn cascade(&self) -> Vec<(NodeId, u32)> {
        let mut c: Vec<(NodeId, u32)> = self
            .times
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != UNINFECTED)
            .map(|(i, &t)| (i as NodeId, t))
            .collect();
        c.sort_unstable_by_key(|&(i, t)| (t, i));
        c
    }

    /// Number of infected nodes.
    pub fn infected_count(&self) -> usize {
        self.times.iter().filter(|&&t| t != UNINFECTED).count()
    }

    /// Largest infection round (0 if only seeds were infected; 0 for an
    /// all-uninfected record).
    pub fn horizon(&self) -> u32 {
        self.times
            .iter()
            .filter(|&&t| t != UNINFECTED)
            .max()
            .copied()
            .unwrap_or(0)
    }
}

/// Observations from `β` diffusion processes: the status matrix plus the
/// per-process records.
///
/// Invariant: `records[l].times[i] != UNINFECTED  ⇔  statuses.get(l, i)`.
#[derive(Clone, Debug)]
pub struct ObservationSet {
    /// Final statuses, `β × n`.
    pub statuses: StatusMatrix,
    /// One record per process, in the same order as matrix rows.
    pub records: Vec<DiffusionRecord>,
}

impl ObservationSet {
    /// Bundles a status matrix with its per-process records.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree or the status/record consistency
    /// invariant is violated.
    pub fn new(statuses: StatusMatrix, records: Vec<DiffusionRecord>) -> Self {
        assert_eq!(
            statuses.num_processes(),
            records.len(),
            "one record per status row required"
        );
        for (l, rec) in records.iter().enumerate() {
            assert_eq!(
                rec.times.len(),
                statuses.num_nodes(),
                "record {l} has wrong node count"
            );
            for i in 0..statuses.num_nodes() {
                debug_assert_eq!(
                    rec.infected(i as NodeId),
                    statuses.get(l, i as NodeId),
                    "record {l} disagrees with status matrix at node {i}"
                );
            }
        }
        ObservationSet { statuses, records }
    }

    /// Number of processes `β`.
    pub fn num_processes(&self) -> usize {
        self.statuses.num_processes()
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.statuses.num_nodes()
    }

    /// Restricts to the first `beta` processes (used by the paper's
    /// `β`-sweep so that larger budgets extend smaller ones).
    ///
    /// # Panics
    ///
    /// Panics if `beta > self.num_processes()`.
    pub fn truncated(&self, beta: usize) -> ObservationSet {
        assert!(beta <= self.num_processes());
        let mut m = StatusMatrix::new(beta, self.num_nodes());
        for l in 0..beta {
            for i in 0..self.num_nodes() {
                if self.statuses.get(l, i as NodeId) {
                    m.set(l, i as NodeId);
                }
            }
        }
        ObservationSet::new(m, self.records[..beta].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(times: Vec<u32>, sources: Vec<NodeId>) -> DiffusionRecord {
        DiffusionRecord { sources, times }
    }

    #[test]
    fn infected_and_source_queries() {
        let r = record(vec![0, UNINFECTED, 2], vec![0]);
        assert!(r.infected(0) && !r.infected(1) && r.infected(2));
        assert!(r.is_source(0) && !r.is_source(2));
        assert_eq!(r.infected_count(), 2);
        assert_eq!(r.horizon(), 2);
    }

    #[test]
    fn cascade_is_time_ordered() {
        let r = record(vec![2, 0, UNINFECTED, 1, 0], vec![1, 4]);
        assert_eq!(r.cascade(), vec![(1, 0), (4, 0), (3, 1), (0, 2)]);
    }

    #[test]
    fn empty_record() {
        let r = record(vec![UNINFECTED; 3], vec![]);
        assert_eq!(r.infected_count(), 0);
        assert_eq!(r.horizon(), 0);
        assert!(r.cascade().is_empty());
    }

    #[test]
    fn observation_set_consistency() {
        let statuses = StatusMatrix::from_rows(&[vec![true, false], vec![false, true]]);
        let records = vec![
            record(vec![0, UNINFECTED], vec![0]),
            record(vec![UNINFECTED, 0], vec![1]),
        ];
        let obs = ObservationSet::new(statuses, records);
        assert_eq!(obs.num_processes(), 2);
        assert_eq!(obs.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "one record per status row")]
    fn observation_set_rejects_shape_mismatch() {
        let statuses = StatusMatrix::from_rows(&[vec![true]]);
        ObservationSet::new(statuses, vec![]);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let statuses =
            StatusMatrix::from_rows(&[vec![true, false], vec![false, true], vec![true, true]]);
        let records = vec![
            record(vec![0, UNINFECTED], vec![0]),
            record(vec![UNINFECTED, 0], vec![1]),
            record(vec![0, 1], vec![0]),
        ];
        let obs = ObservationSet::new(statuses, records);
        let cut = obs.truncated(2);
        assert_eq!(cut.num_processes(), 2);
        assert!(cut.statuses.get(0, 0) && !cut.statuses.get(0, 1));
        assert_eq!(cut.records.len(), 2);
    }
}
