#![warn(missing_docs)]
//! # diffnet-simulate
//!
//! Diffusion-process simulator and observation data structures for diffusion
//! network inference.
//!
//! The TENDS paper observes `β` independent diffusion processes on a hidden
//! network and records, for each process, the **final infection status** of
//! every node. Baseline algorithms additionally consume the information the
//! paper grants them: full cascades (infection times) for NetRate / MulTree
//! and seed sets for LIFT. This crate produces all of it:
//!
//! * [`EdgeProbs`] — per-edge propagation probabilities; the paper draws
//!   them from a Gaussian with mean `μ` and standard deviation 0.05.
//! * [`IndependentCascade`] — the round-synchronous independent-cascade
//!   model: each newly infected node gets exactly one chance to infect each
//!   currently uninfected out-neighbor.
//! * [`StatusMatrix`] — a bit-packed `β × n` matrix of final statuses with
//!   fast counting kernels (`N_ijk` counting is the inner loop of TENDS).
//! * [`ObservationSet`] — statuses plus per-process [`DiffusionRecord`]s
//!   (sources and infection rounds).
//!
//! ## Example
//!
//! ```
//! use diffnet_graph::DiGraph;
//! use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let mut rng = StdRng::seed_from_u64(42);
//! let probs = EdgeProbs::gaussian(&g, 0.3, 0.05, &mut rng);
//! let sim = IndependentCascade::new(&g, &probs);
//! let obs = sim.observe(IcConfig { initial_ratio: 0.25, num_processes: 100 }, &mut rng);
//!
//! assert_eq!(obs.num_processes(), 100);
//! assert_eq!(obs.num_nodes(), 4);
//! ```

mod cascade;
mod ic;
pub mod io;
mod lt;
pub mod mmap;
mod noise;
mod probs;
pub mod simd;
mod status;

pub use cascade::{DiffusionRecord, ObservationSet, UNINFECTED};
pub use ic::{IcConfig, IndependentCascade};
pub use lt::LinearThreshold;
pub use mmap::{open_bytes, FileBytes};
pub use noise::{delay_timestamps, flip_statuses};
pub use probs::{sample_normal, EdgeProbs, ProbShapeError};
pub use simd::{parse_simd, simd_from_env, Kernels, SimdMode};
pub use status::{
    ComboSizeError, CountsWorkspace, NodeColumns, PairCounts, StatusMatrix, WorkspaceStats,
    MAX_TABULATED_PARENTS,
};
