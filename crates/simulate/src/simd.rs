//! Runtime-dispatched SIMD kernels for the bitset counting hot paths.
//!
//! Every hot loop over bit-packed statuses reduces to a handful of
//! word-stream primitives: AND+popcount over column pairs
//! ([`NodeColumns::pair_counts_block`](crate::NodeColumns::pair_counts_block)),
//! fused mask/child popcounts (the `N_ijk` tabulation), and the mask split
//! performed by the incremental counts workspace. This module implements
//! those primitives in three tiers behind one-time runtime feature
//! detection:
//!
//! * **avx2** — 256-bit AND plus the Muła nibble-LUT popcount
//!   (`vpshufb` + `vpsadbw`), four 64-bit words per step;
//! * **popcnt** — 4-way-unrolled hardware `popcnt`. The default x86-64
//!   compile target predates the instruction, so a plain `count_ones`
//!   otherwise lowers to a ~13-op software sequence per word;
//! * **scalar** — a portable Harley–Seal carry-save accumulator that
//!   amortizes one software popcount over eight words. Faster than the
//!   word-at-a-time loop on every architecture, and the only tier on
//!   non-x86 targets.
//!
//! The active tier is resolved once per process — from an explicit
//! [`set_mode`] call (the CLI `--simd` flag) or the `DIFFNET_SIMD` env
//! knob (`auto`, `avx2`, `popcnt`, `scalar`; like `DIFFNET_THREADS`, a
//! malformed value warns and falls back to `auto` instead of being
//! silently ignored) — and cached in a [`OnceLock`].
//!
//! **Every tier is bit-identical.** All kernels compute exact integer
//! counts — there is no floating-point accumulation anywhere in the
//! dispatch surface — so the tier choice can never change an inferred
//! edge list. The cross-tier proptests and the `DIFFNET_SIMD=scalar` CI
//! job pin this contract.

// The `unsafe fn` bodies below must not become implicit unsafe blocks:
// every unsafe operation carries its own `// SAFETY:` comment.
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::sync::OnceLock;

/// Which kernel tier to use for the bitset counting primitives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimdMode {
    /// Probe CPU features once and pick the fastest available tier.
    #[default]
    Auto,
    /// Force the AVX2 kernels; warns and falls back if unavailable.
    Avx2,
    /// Force the hardware-popcnt kernels; warns and falls back if
    /// unavailable.
    Popcnt,
    /// Force the portable scalar kernels (always available).
    Scalar,
}

impl SimdMode {
    /// The knob spelling of this mode (`auto`, `avx2`, `popcnt`,
    /// `scalar`).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Avx2 => "avx2",
            SimdMode::Popcnt => "popcnt",
            SimdMode::Scalar => "scalar",
        }
    }
}

impl fmt::Display for SimdMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SimdMode {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdMode::Auto),
            "avx2" => Ok(SimdMode::Avx2),
            "popcnt" => Ok(SimdMode::Popcnt),
            "scalar" => Ok(SimdMode::Scalar),
            _ => Err(()),
        }
    }
}

/// Parses a `DIFFNET_SIMD`-style override: `None` (unset) means
/// [`SimdMode::Auto`]; anything else must spell a mode.
///
/// # Errors
///
/// Returns the unparseable raw text so callers can report it.
pub fn parse_simd(raw: Option<&str>) -> Result<SimdMode, &str> {
    match raw {
        None => Ok(SimdMode::Auto),
        Some(text) => text.parse().map_err(|()| text),
    }
}

/// Reads the `DIFFNET_SIMD` override from the environment.
///
/// A malformed value warns on stderr and falls back to `auto` — the same
/// warn-don't-ignore contract as `DIFFNET_THREADS`.
pub fn simd_from_env() -> SimdMode {
    match parse_simd(std::env::var("DIFFNET_SIMD").ok().as_deref()) {
        Ok(mode) => mode,
        Err(raw) => {
            eprintln!(
                "warning: DIFFNET_SIMD={raw:?} is not a SIMD mode \
                 (auto, avx2, popcnt, scalar); using auto"
            );
            SimdMode::Auto
        }
    }
}

/// The resolved kernel table: one safe function pointer per primitive.
///
/// All slice-pair kernels use zip semantics (they process up to the
/// shorter length); in practice callers always pass equal-length column
/// slices. Obtain the process-wide table with [`kernels`], or build an
/// explicit one with [`Kernels::for_mode`] (used by the cross-tier
/// identity tests and the benchmark's forced-scalar sweep — it never
/// touches process state).
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    dispatch: &'static str,
    and_popcount: fn(&[u64], &[u64]) -> u64,
    and_self_popcount: fn(&[u64], &[u64]) -> (u64, u64),
    and3_popcount: And3Fn,
    popcount: fn(&[u64]) -> u64,
    refine_masks: fn(&mut [u64], &mut [u64], &[u64]),
}

/// Signature of the fused three-operand kernel:
/// `(popcount(m & w), popcount(m & w & c))`.
type And3Fn = fn(&[u64], &[u64], &[u64]) -> (u64, u64);

impl Kernels {
    /// Builds the kernel table for `mode` without touching the
    /// process-wide cache. A forced mode whose CPU feature is missing
    /// warns and degrades to the next-fastest available tier.
    pub fn for_mode(mode: SimdMode) -> Kernels {
        match mode {
            SimdMode::Scalar => SCALAR,
            SimdMode::Auto => best_available(),
            SimdMode::Avx2 => {
                if have_avx2() {
                    x86::AVX2
                } else {
                    let fallback = best_available();
                    eprintln!(
                        "warning: DIFFNET_SIMD=avx2 requested but AVX2 is not \
                         available on this CPU; using {}",
                        fallback.dispatch
                    );
                    fallback
                }
            }
            SimdMode::Popcnt => {
                if have_popcnt() {
                    x86::POPCNT
                } else {
                    eprintln!(
                        "warning: DIFFNET_SIMD=popcnt requested but POPCNT is \
                         not available on this CPU; using scalar"
                    );
                    SCALAR
                }
            }
        }
    }

    /// The tier this table dispatches to: `"avx2"`, `"popcnt"`, or
    /// `"scalar"`. Host-dependent under `auto` — report it under runtime
    /// metadata, never in a deterministic report section.
    pub fn dispatch(&self) -> &'static str {
        self.dispatch
    }

    /// CPU features relevant to the kernels that this host actually has,
    /// for benchmark/report headers. Empty on non-x86_64 targets.
    pub fn detected_features() -> Vec<&'static str> {
        let mut features = Vec::new();
        if have_avx2() {
            features.push("avx2");
        }
        if have_popcnt() {
            features.push("popcnt");
        }
        features
    }

    /// `popcount(a & b)` over the common prefix of the two slices.
    #[inline]
    pub fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64 {
        (self.and_popcount)(a, b)
    }

    /// `(popcount(mask & child), popcount(mask))` in one pass — the
    /// `N_ijk` tabulation primitive: infected-and-in-combination count
    /// plus the combination total.
    #[inline]
    pub fn and_self_popcount(&self, mask: &[u64], child: &[u64]) -> (u64, u64) {
        (self.and_self_popcount)(mask, child)
    }

    /// `(popcount(m & w), popcount(m & w & c))` in one pass — the batched
    /// single-extension scoring primitive: how much of mask `m` lands in
    /// parent column `w`, and how much of that is also in child `c`.
    #[inline]
    pub fn and3_popcount(&self, m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
        (self.and3_popcount)(m, w, c)
    }

    /// `popcount(a)`.
    #[inline]
    pub fn popcount(&self, a: &[u64]) -> u64 {
        (self.popcount)(a)
    }

    /// Splits the masks in `lo` by parent column `p`: afterwards
    /// `lo[k] = old_lo[k] & !p[k]` (parent uninfected) and
    /// `hi[k] = old_lo[k] & p[k]` (parent infected). Processes the common
    /// prefix of the three slices.
    #[inline]
    pub fn refine_masks(&self, lo: &mut [u64], hi: &mut [u64], p: &[u64]) {
        (self.refine_masks)(lo, hi, p)
    }
}

/// The fastest tier this CPU supports.
fn best_available() -> Kernels {
    if have_avx2() {
        x86::AVX2
    } else if have_popcnt() {
        x86::POPCNT
    } else {
        SCALAR
    }
}

static GLOBAL: OnceLock<(SimdMode, Kernels)> = OnceLock::new();

fn global() -> &'static (SimdMode, Kernels) {
    GLOBAL.get_or_init(|| {
        let mode = simd_from_env();
        (mode, Kernels::for_mode(mode))
    })
}

/// The process-wide kernel table, resolving it from `DIFFNET_SIMD` on
/// first use.
pub fn kernels() -> &'static Kernels {
    &global().1
}

/// The mode the process-wide table was requested with (`auto` unless
/// overridden) — host-independent, safe for deterministic reports.
pub fn requested_mode() -> SimdMode {
    global().0
}

/// Requests `mode` process-wide. Must run before the first kernel use
/// (the table resolves once and is then immutable); a later conflicting
/// call warns and keeps the resolved table. Returns the active table.
pub fn set_mode(mode: SimdMode) -> &'static Kernels {
    let resolved = GLOBAL.get_or_init(|| (mode, Kernels::for_mode(mode)));
    if resolved.0 != mode {
        eprintln!(
            "warning: SIMD kernels already resolved for mode {}; ignoring {mode}",
            resolved.0
        );
    }
    &resolved.1
}

#[cfg(target_arch = "x86_64")]
fn have_popcnt() -> bool {
    std::arch::is_x86_feature_detected!("popcnt")
}

#[cfg(not(target_arch = "x86_64"))]
fn have_popcnt() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    // The AVX2 tier also uses scalar `popcnt` for its tails.
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx2() -> bool {
    false
}

// ---------------------------------------------------------------------
// Scalar tier: Harley–Seal carry-save accumulation.
// ---------------------------------------------------------------------

const SCALAR: Kernels = Kernels {
    dispatch: "scalar",
    and_popcount: scalar_and_popcount,
    and_self_popcount: scalar_and_self_popcount,
    and3_popcount: scalar_and3_popcount,
    popcount: scalar_popcount,
    refine_masks: scalar_refine_masks,
};

/// Carry-save adder: `(sum, carry)` of three bit-vectors, per lane.
#[inline(always)]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Harley–Seal population count: `len` words arriving as 16-word
/// blocks via `block` (called with the block's base index, guaranteed
/// `i + 16 <= len`) plus a word-at-a-time tail via `word`.
///
/// Each 16-word block is reduced as two interleaved 8-word carry-save
/// adder trees on disjoint accumulator sets, so the (software, on
/// baseline x86-64) per-word popcount runs twice per sixteen inputs
/// instead of once per input — roughly 4 ops/word versus ~13 for the
/// naive loop — and the two chains overlap in the pipeline. Taking the
/// block as a materialized `[u64; 16]` keeps the hot loop free of
/// per-index bounds checks.
#[inline(always)]
fn harley_seal(
    len: usize,
    mut block: impl FnMut(usize) -> [u64; 16],
    mut word: impl FnMut(usize) -> u64,
) -> u64 {
    let mut total = 0u64;
    let (mut ones0, mut twos0, mut fours0) = (0u64, 0u64, 0u64);
    let (mut ones1, mut twos1, mut fours1) = (0u64, 0u64, 0u64);
    let mut i = 0usize;
    while i + 16 <= len {
        let w = block(i);
        let (t, twos_a) = csa(ones0, w[0], w[1]);
        let (t, twos_b) = csa(t, w[2], w[3]);
        let (u, twos_e) = csa(ones1, w[8], w[9]);
        let (u, twos_f) = csa(u, w[10], w[11]);
        let (t, twos_c) = csa(t, w[4], w[5]);
        let (t, twos_d) = csa(t, w[6], w[7]);
        let (u, twos_g) = csa(u, w[12], w[13]);
        let (u, twos_h) = csa(u, w[14], w[15]);
        ones0 = t;
        ones1 = u;
        let (t, fours_a) = csa(twos0, twos_a, twos_b);
        let (t, fours_b) = csa(t, twos_c, twos_d);
        let (u, fours_e) = csa(twos1, twos_e, twos_f);
        let (u, fours_f) = csa(u, twos_g, twos_h);
        twos0 = t;
        twos1 = u;
        let (t, eights0) = csa(fours0, fours_a, fours_b);
        let (u, eights1) = csa(fours1, fours_e, fours_f);
        fours0 = t;
        fours1 = u;
        total += eights0.count_ones() as u64 + eights1.count_ones() as u64;
        i += 16;
    }
    total *= 8;
    total += 4 * (fours0.count_ones() as u64 + fours1.count_ones() as u64);
    total += 2 * (twos0.count_ones() as u64 + twos1.count_ones() as u64);
    total += ones0.count_ones() as u64 + ones1.count_ones() as u64;
    while i < len {
        total += word(i).count_ones() as u64;
        i += 1;
    }
    total
}

/// A 16-word block of `s` starting at `i` as a fixed-size array
/// (caller guarantees `i + 16 <= s.len()`).
#[inline(always)]
fn block16(s: &[u64], i: usize) -> &[u64; 16] {
    s[i..i + 16].try_into().expect("16-word block")
}

fn scalar_popcount(a: &[u64]) -> u64 {
    harley_seal(a.len(), |i| *block16(a, i), |i| a[i])
}

// The slices below are truncated to the common length before the index
// closures are built: with the loop bound equal to the slices' exact
// lengths the bounds checks vanish from the tail loops, and the block
// loops only pay one slice check per sixteen words.

fn scalar_and_popcount(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    harley_seal(
        n,
        |i| {
            let (ca, cb) = (block16(a, i), block16(b, i));
            std::array::from_fn(|k| ca[k] & cb[k])
        },
        |i| a[i] & b[i],
    )
}

fn scalar_and_self_popcount(mask: &[u64], child: &[u64]) -> (u64, u64) {
    let n = mask.len().min(child.len());
    let (mask, child) = (&mask[..n], &child[..n]);
    (
        harley_seal(
            n,
            |i| {
                let (cm, cc) = (block16(mask, i), block16(child, i));
                std::array::from_fn(|k| cm[k] & cc[k])
            },
            |i| mask[i] & child[i],
        ),
        harley_seal(n, |i| *block16(mask, i), |i| mask[i]),
    )
}

fn scalar_and3_popcount(m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
    let n = m.len().min(w.len()).min(c.len());
    let (m, w, c) = (&m[..n], &w[..n], &c[..n]);
    (
        harley_seal(
            n,
            |i| {
                let (cm, cw) = (block16(m, i), block16(w, i));
                std::array::from_fn(|k| cm[k] & cw[k])
            },
            |i| m[i] & w[i],
        ),
        harley_seal(
            n,
            |i| {
                let (cm, cw, cc) = (block16(m, i), block16(w, i), block16(c, i));
                std::array::from_fn(|k| cm[k] & cw[k] & cc[k])
            },
            |i| m[i] & w[i] & c[i],
        ),
    )
}

fn scalar_refine_masks(lo: &mut [u64], hi: &mut [u64], p: &[u64]) {
    let n = lo.len().min(hi.len()).min(p.len());
    for k in 0..n {
        let word = lo[k];
        lo[k] = word & !p[k];
        hi[k] = word & p[k];
    }
}

// ---------------------------------------------------------------------
// x86-64 tiers: hardware popcnt and AVX2.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Kernels;
    use core::arch::x86_64::*;

    pub(super) const POPCNT: Kernels = Kernels {
        dispatch: "popcnt",
        and_popcount: popcnt_and_popcount_safe,
        and_self_popcount: popcnt_and_self_popcount_safe,
        and3_popcount: popcnt_and3_popcount_safe,
        popcount: popcnt_popcount_safe,
        // Mask refinement is pure AND/ANDN — no popcount to accelerate.
        refine_masks: super::scalar_refine_masks,
    };

    pub(super) const AVX2: Kernels = Kernels {
        dispatch: "avx2",
        and_popcount: avx2_and_popcount_safe,
        and_self_popcount: avx2_and_self_popcount_safe,
        and3_popcount: avx2_and3_popcount_safe,
        popcount: avx2_popcount_safe,
        refine_masks: avx2_refine_masks_safe,
    };

    // Safe wrappers: `#[target_feature]` functions cannot coerce to plain
    // `fn` pointers, so each tier entry is an ordinary function whose only
    // job is the feature-gated call. They are sound because the tier
    // tables above are only ever installed after runtime detection.

    fn popcnt_and_popcount_safe(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: this wrapper is only reachable through the POPCNT/AVX2
        // kernel tables, which `Kernels::for_mode` installs only after
        // `is_x86_feature_detected!("popcnt")` succeeded.
        unsafe { popcnt_and_popcount(a, b) }
    }

    fn popcnt_and_self_popcount_safe(mask: &[u64], child: &[u64]) -> (u64, u64) {
        // SAFETY: only installed after runtime POPCNT detection (see
        // `Kernels::for_mode`).
        unsafe { popcnt_and_self_popcount(mask, child) }
    }

    fn popcnt_and3_popcount_safe(m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
        // SAFETY: only installed after runtime POPCNT detection.
        unsafe { popcnt_and3_popcount(m, w, c) }
    }

    fn popcnt_popcount_safe(a: &[u64]) -> u64 {
        // SAFETY: only installed after runtime POPCNT detection.
        unsafe { popcnt_popcount(a) }
    }

    fn avx2_and_popcount_safe(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only installed after runtime AVX2+POPCNT detection.
        unsafe { avx2_and_popcount(a, b) }
    }

    fn avx2_and_self_popcount_safe(mask: &[u64], child: &[u64]) -> (u64, u64) {
        // SAFETY: only installed after runtime AVX2+POPCNT detection.
        unsafe { avx2_and_self_popcount(mask, child) }
    }

    fn avx2_and3_popcount_safe(m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
        // SAFETY: only installed after runtime AVX2+POPCNT detection.
        unsafe { avx2_and3_popcount(m, w, c) }
    }

    fn avx2_popcount_safe(a: &[u64]) -> u64 {
        // SAFETY: only installed after runtime AVX2+POPCNT detection.
        unsafe { avx2_popcount(a) }
    }

    fn avx2_refine_masks_safe(lo: &mut [u64], hi: &mut [u64], p: &[u64]) {
        // SAFETY: only installed after runtime AVX2+POPCNT detection.
        unsafe { avx2_refine_masks(lo, hi, p) }
    }

    // `#[target_feature]` cannot be applied to generic functions, so the
    // popcnt tier spells out each kernel with four independent
    // accumulators (the unrolling hides the 3-cycle popcnt latency behind
    // its 1/cycle throughput).

    #[target_feature(enable = "popcnt")]
    fn popcnt_and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        let mut i = 0usize;
        while i + 4 <= n {
            s0 += (a[i] & b[i]).count_ones() as u64;
            s1 += (a[i + 1] & b[i + 1]).count_ones() as u64;
            s2 += (a[i + 2] & b[i + 2]).count_ones() as u64;
            s3 += (a[i + 3] & b[i + 3]).count_ones() as u64;
            i += 4;
        }
        while i < n {
            s0 += (a[i] & b[i]).count_ones() as u64;
            i += 1;
        }
        s0 + s1 + s2 + s3
    }

    #[target_feature(enable = "popcnt")]
    fn popcnt_and_self_popcount(mask: &[u64], child: &[u64]) -> (u64, u64) {
        let n = mask.len().min(child.len());
        let (mask, child) = (&mask[..n], &child[..n]);
        let (mut and0, mut and1, mut tot0, mut tot1) = (0u64, 0u64, 0u64, 0u64);
        let mut i = 0usize;
        while i + 2 <= n {
            and0 += (mask[i] & child[i]).count_ones() as u64;
            tot0 += mask[i].count_ones() as u64;
            and1 += (mask[i + 1] & child[i + 1]).count_ones() as u64;
            tot1 += mask[i + 1].count_ones() as u64;
            i += 2;
        }
        if i < n {
            and0 += (mask[i] & child[i]).count_ones() as u64;
            tot0 += mask[i].count_ones() as u64;
        }
        (and0 + and1, tot0 + tot1)
    }

    #[target_feature(enable = "popcnt")]
    fn popcnt_and3_popcount(m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
        let n = m.len().min(w.len()).min(c.len());
        let (m, w, c) = (&m[..n], &w[..n], &c[..n]);
        let (mut mw0, mut mw1, mut mwc0, mut mwc1) = (0u64, 0u64, 0u64, 0u64);
        let mut i = 0usize;
        while i + 2 <= n {
            let x0 = m[i] & w[i];
            let x1 = m[i + 1] & w[i + 1];
            mw0 += x0.count_ones() as u64;
            mwc0 += (x0 & c[i]).count_ones() as u64;
            mw1 += x1.count_ones() as u64;
            mwc1 += (x1 & c[i + 1]).count_ones() as u64;
            i += 2;
        }
        if i < n {
            let x = m[i] & w[i];
            mw0 += x.count_ones() as u64;
            mwc0 += (x & c[i]).count_ones() as u64;
        }
        (mw0 + mw1, mwc0 + mwc1)
    }

    #[target_feature(enable = "popcnt")]
    fn popcnt_popcount(a: &[u64]) -> u64 {
        let n = a.len();
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        let mut i = 0usize;
        while i + 4 <= n {
            s0 += a[i].count_ones() as u64;
            s1 += a[i + 1].count_ones() as u64;
            s2 += a[i + 2].count_ones() as u64;
            s3 += a[i + 3].count_ones() as u64;
            i += 4;
        }
        while i < n {
            s0 += a[i].count_ones() as u64;
            i += 1;
        }
        s0 + s1 + s2 + s3
    }

    /// Loads 4 words from `s` starting at `i` (caller guarantees
    /// `i + 4 <= s.len()`).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn load4(s: &[u64], i: usize) -> __m256i {
        debug_assert!(i + 4 <= s.len());
        // SAFETY: the caller guarantees `s[i..i + 4]` is in bounds, and
        // `_mm256_loadu_si256` has no alignment requirement.
        unsafe { _mm256_loadu_si256(s.as_ptr().add(i).cast()) }
    }

    /// Per-64-bit-lane population count via the Muła nibble-LUT method:
    /// `vpshufb` maps each nibble to its count, `vpsadbw` horizontally
    /// sums the 8 byte-counts of every 64-bit lane.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn popcnt_epi64(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 0
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 1
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Sums the four 64-bit lanes of an accumulator vector.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is 32 bytes of writable memory; `storeu` has no
        // alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    fn avx2_and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm256_and_si256(load4(a, i), load4(b, i));
            acc = _mm256_add_epi64(acc, popcnt_epi64(x));
            i += 4;
        }
        let mut total = hsum_epi64(acc);
        while i < n {
            total += (a[i] & b[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    fn avx2_and_self_popcount(mask: &[u64], child: &[u64]) -> (u64, u64) {
        let n = mask.len().min(child.len());
        let mut acc_and = _mm256_setzero_si256();
        let mut acc_tot = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let (m, c) = (load4(mask, i), load4(child, i));
            acc_and = _mm256_add_epi64(acc_and, popcnt_epi64(_mm256_and_si256(m, c)));
            acc_tot = _mm256_add_epi64(acc_tot, popcnt_epi64(m));
            i += 4;
        }
        let (mut and_total, mut total) = (hsum_epi64(acc_and), hsum_epi64(acc_tot));
        while i < n {
            and_total += (mask[i] & child[i]).count_ones() as u64;
            total += mask[i].count_ones() as u64;
            i += 1;
        }
        (and_total, total)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    fn avx2_and3_popcount(m: &[u64], w: &[u64], c: &[u64]) -> (u64, u64) {
        let n = m.len().min(w.len()).min(c.len());
        let mut acc_mw = _mm256_setzero_si256();
        let mut acc_mwc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let (mv, wv, cv) = (load4(m, i), load4(w, i), load4(c, i));
            let mw = _mm256_and_si256(mv, wv);
            acc_mw = _mm256_add_epi64(acc_mw, popcnt_epi64(mw));
            acc_mwc = _mm256_add_epi64(acc_mwc, popcnt_epi64(_mm256_and_si256(mw, cv)));
            i += 4;
        }
        let (mut mw_total, mut mwc_total) = (hsum_epi64(acc_mw), hsum_epi64(acc_mwc));
        while i < n {
            let x = m[i] & w[i];
            mw_total += x.count_ones() as u64;
            mwc_total += (x & c[i]).count_ones() as u64;
            i += 1;
        }
        (mw_total, mwc_total)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    fn avx2_popcount(a: &[u64]) -> u64 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let x = load4(a, i);
            acc = _mm256_add_epi64(acc, popcnt_epi64(x));
            i += 4;
        }
        let mut total = hsum_epi64(acc);
        while i < n {
            total += a[i].count_ones() as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    fn avx2_refine_masks(lo: &mut [u64], hi: &mut [u64], p: &[u64]) {
        let n = lo.len().min(hi.len()).min(p.len());
        let mut i = 0usize;
        while i + 4 <= n {
            let word = load4(lo, i);
            let pv = load4(p, i);
            // SAFETY: `i + 4 <= n`, the common in-bounds prefix of all
            // three slices; `storeu` has no alignment requirement.
            unsafe {
                _mm256_storeu_si256(lo.as_mut_ptr().add(i).cast(), _mm256_andnot_si256(pv, word));
                _mm256_storeu_si256(hi.as_mut_ptr().add(i).cast(), _mm256_and_si256(word, pv));
            }
            i += 4;
        }
        while i < n {
            let word = lo[i];
            lo[i] = word & !p[i];
            hi[i] = word & p[i];
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift word stream (no `rand` dependency so the
    /// module's tests stay runnable under miri without extra crates).
    fn words(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    fn naive_popcount(a: &[u64]) -> u64 {
        a.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Lengths exercising every unroll boundary: empty, sub-lane, lane
    /// tails of the 4-word AVX2 step and the 8-word Harley–Seal block.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 40, 127, 255];

    fn tiers() -> Vec<Kernels> {
        let mut tiers = vec![Kernels::for_mode(SimdMode::Scalar)];
        if have_popcnt() {
            tiers.push(Kernels::for_mode(SimdMode::Popcnt));
        }
        if have_avx2() {
            tiers.push(Kernels::for_mode(SimdMode::Avx2));
        }
        tiers.push(Kernels::for_mode(SimdMode::Auto));
        tiers
    }

    #[test]
    fn all_tiers_match_naive_popcount() {
        for &len in LENS {
            let a = words(0x9E37_79B9, len);
            let expect = naive_popcount(&a);
            for k in tiers() {
                assert_eq!(k.popcount(&a), expect, "{} len {len}", k.dispatch());
            }
        }
    }

    #[test]
    fn all_tiers_match_naive_and_popcount() {
        for &len in LENS {
            let a = words(0xDEAD_BEEF, len);
            let b = words(0x0BAD_F00D, len);
            let expect: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & y).count_ones() as u64)
                .sum();
            for k in tiers() {
                assert_eq!(k.and_popcount(&a, &b), expect, "{} len {len}", k.dispatch());
            }
        }
    }

    #[test]
    fn all_tiers_match_naive_and_self_popcount() {
        for &len in LENS {
            let m = words(0x1234_5678, len);
            let c = words(0x8765_4321, len);
            let expect = (
                m.iter()
                    .zip(&c)
                    .map(|(x, y)| (x & y).count_ones() as u64)
                    .sum::<u64>(),
                naive_popcount(&m),
            );
            for k in tiers() {
                assert_eq!(
                    k.and_self_popcount(&m, &c),
                    expect,
                    "{} len {len}",
                    k.dispatch()
                );
            }
        }
    }

    #[test]
    fn all_tiers_match_naive_and3_popcount() {
        for &len in LENS {
            let m = words(0xAAAA_1111, len);
            let w = words(0xBBBB_2222, len);
            let c = words(0xCCCC_3333, len);
            let expect = (
                m.iter()
                    .zip(&w)
                    .map(|(x, y)| (x & y).count_ones() as u64)
                    .sum::<u64>(),
                m.iter()
                    .zip(&w)
                    .zip(&c)
                    .map(|((x, y), z)| (x & y & z).count_ones() as u64)
                    .sum::<u64>(),
            );
            for k in tiers() {
                assert_eq!(
                    k.and3_popcount(&m, &w, &c),
                    expect,
                    "{} len {len}",
                    k.dispatch()
                );
            }
        }
    }

    #[test]
    fn all_tiers_refine_masks_identically() {
        for &len in LENS {
            let src = words(0xFEED_FACE, len);
            let p = words(0xCAFE_D00D, len);
            let mut expect_lo = src.clone();
            let mut expect_hi = vec![0u64; len];
            for k in 0..len {
                expect_lo[k] = src[k] & !p[k];
                expect_hi[k] = src[k] & p[k];
            }
            for k in tiers() {
                let mut lo = src.clone();
                let mut hi = vec![0u64; len];
                k.refine_masks(&mut lo, &mut hi, &p);
                assert_eq!(lo, expect_lo, "{} lo len {len}", k.dispatch());
                assert_eq!(hi, expect_hi, "{} hi len {len}", k.dispatch());
                // The split is a partition of the source mask.
                for ((l, h), s) in lo.iter().zip(&hi).zip(&src) {
                    assert_eq!(l | h, *s);
                    assert_eq!(l & h, 0);
                }
            }
        }
    }

    #[test]
    fn refine_masks_ignores_trailing_words_beyond_parent() {
        // Zip semantics: words past the shortest slice stay untouched.
        let mut lo = vec![u64::MAX; 5];
        let mut hi = vec![0u64; 5];
        let p = vec![0xFFu64; 3];
        Kernels::for_mode(SimdMode::Scalar).refine_masks(&mut lo, &mut hi, &p);
        assert_eq!(lo[3], u64::MAX);
        assert_eq!(hi[3], 0);
        assert_eq!(lo[0], !0xFF);
        assert_eq!(hi[0], 0xFF);
    }

    #[test]
    fn parse_simd_accepts_all_modes() {
        assert_eq!(parse_simd(None), Ok(SimdMode::Auto));
        assert_eq!(parse_simd(Some("auto")), Ok(SimdMode::Auto));
        assert_eq!(parse_simd(Some("AVX2")), Ok(SimdMode::Avx2));
        assert_eq!(parse_simd(Some(" popcnt ")), Ok(SimdMode::Popcnt));
        assert_eq!(parse_simd(Some("scalar")), Ok(SimdMode::Scalar));
    }

    #[test]
    fn parse_simd_reports_the_raw_text() {
        assert_eq!(parse_simd(Some("sse9")), Err("sse9"));
        assert_eq!(parse_simd(Some("")), Err(""));
        assert_eq!(parse_simd(Some("2")), Err("2"));
    }

    #[test]
    fn mode_strings_round_trip() {
        for mode in [
            SimdMode::Auto,
            SimdMode::Avx2,
            SimdMode::Popcnt,
            SimdMode::Scalar,
        ] {
            assert_eq!(parse_simd(Some(mode.as_str())), Ok(mode));
            assert_eq!(mode.to_string(), mode.as_str());
        }
    }

    #[test]
    fn forced_scalar_always_dispatches_scalar() {
        assert_eq!(Kernels::for_mode(SimdMode::Scalar).dispatch(), "scalar");
    }

    #[test]
    fn auto_picks_the_best_detected_tier() {
        let auto = Kernels::for_mode(SimdMode::Auto);
        let expect = if have_avx2() {
            "avx2"
        } else if have_popcnt() {
            "popcnt"
        } else {
            "scalar"
        };
        assert_eq!(auto.dispatch(), expect);
    }

    #[test]
    fn process_global_table_is_stable() {
        let first = kernels().dispatch();
        assert_eq!(kernels().dispatch(), first);
        // `requested_mode` resolves consistently with the table.
        let _ = requested_mode();
    }
}
