//! Round-synchronous independent-cascade (IC) simulation.
//!
//! This is the diffusion model of the paper's experimental setup: "in each
//! diffusion process, each infected node tries to infect its uninfected
//! child nodes with a given propagation probability". A node infected in
//! round `t` makes exactly one attempt per uninfected out-neighbor in round
//! `t + 1`; the process runs until no new infections occur.

use crate::{DiffusionRecord, EdgeProbs, ObservationSet, StatusMatrix, UNINFECTED};
use diffnet_graph::{DiGraph, NodeId};
use rand::Rng;

/// Parameters of a batch of simulated diffusion processes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IcConfig {
    /// Fraction `α` of nodes seeded per process (`⌈αn⌉` seeds, at least 1).
    pub initial_ratio: f64,
    /// Number of processes `β`.
    pub num_processes: usize,
}

impl Default for IcConfig {
    /// The paper's default setting: `α = 0.15`, `β = 150`.
    fn default() -> Self {
        IcConfig {
            initial_ratio: 0.15,
            num_processes: 150,
        }
    }
}

/// Independent-cascade simulator bound to a graph and its edge
/// probabilities.
pub struct IndependentCascade<'a> {
    graph: &'a DiGraph,
    probs: &'a EdgeProbs,
}

impl<'a> IndependentCascade<'a> {
    /// Binds the simulator to `graph` with `probs`.
    ///
    /// # Panics
    ///
    /// Panics if `probs` does not cover exactly the graph's edges. Use
    /// [`IndependentCascade::try_new`] when the pairing is caller input.
    pub fn new(graph: &'a DiGraph, probs: &'a EdgeProbs) -> Self {
        Self::try_new(graph, probs).expect("edge probabilities must cover every edge")
    }

    /// [`new`](Self::new) with the shape mismatch as a typed error: the
    /// simulator indexes `probs` by [`DiGraph::edge_index`], so a vector
    /// built for a different graph would read the wrong edge's weight.
    pub fn try_new(
        graph: &'a DiGraph,
        probs: &'a EdgeProbs,
    ) -> Result<Self, crate::ProbShapeError> {
        probs.validate_for(graph)?;
        Ok(IndependentCascade { graph, probs })
    }

    /// Runs one process from the given seed set and returns its record.
    ///
    /// # Panics
    ///
    /// Panics if a seed id is out of range.
    pub fn run_once<R: Rng + ?Sized>(&self, seeds: &[NodeId], rng: &mut R) -> DiffusionRecord {
        let n = self.graph.node_count();
        let mut times = vec![UNINFECTED; n];
        let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            assert!((s as usize) < n, "seed {s} out of range");
            if times[s as usize] == UNINFECTED {
                times[s as usize] = 0;
                frontier.push(s);
            }
        }

        let mut round: u32 = 0;
        let mut next: Vec<NodeId> = Vec::new();
        while !frontier.is_empty() {
            round += 1;
            next.clear();
            for &u in &frontier {
                let base = match self.graph.out_neighbors(u).first() {
                    Some(&first) => self
                        .graph
                        .edge_index(u, first)
                        .expect("first out-neighbor has an index"),
                    None => continue,
                };
                for (off, &v) in self.graph.out_neighbors(u).iter().enumerate() {
                    if times[v as usize] != UNINFECTED {
                        continue;
                    }
                    if rng.gen_bool(self.probs.at(base + off)) {
                        times[v as usize] = round;
                        next.push(v);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }

        let mut sources = seeds.to_vec();
        sources.sort_unstable();
        sources.dedup();
        DiffusionRecord { sources, times }
    }

    /// Runs `cfg.num_processes` processes with uniformly random seed sets of
    /// size `⌈α·n⌉` and returns the full observation set.
    ///
    /// # Panics
    ///
    /// Panics if `initial_ratio` is not in `(0, 1]` or the graph is empty.
    pub fn observe<R: Rng + ?Sized>(&self, cfg: IcConfig, rng: &mut R) -> ObservationSet {
        let n = self.graph.node_count();
        assert!(n > 0, "cannot simulate on an empty graph");
        assert!(
            cfg.initial_ratio > 0.0 && cfg.initial_ratio <= 1.0,
            "initial_ratio must be in (0, 1], got {}",
            cfg.initial_ratio
        );
        let num_seeds = ((cfg.initial_ratio * n as f64).ceil() as usize).clamp(1, n);

        let mut statuses = StatusMatrix::new(cfg.num_processes, n);
        let mut records = Vec::with_capacity(cfg.num_processes);
        let mut pool: Vec<NodeId> = (0..n as NodeId).collect();

        for l in 0..cfg.num_processes {
            // Partial Fisher–Yates: the first `num_seeds` entries become a
            // uniform sample without replacement.
            for i in 0..num_seeds {
                let j = rng.gen_range(i..n);
                pool.swap(i, j);
            }
            let record = self.run_once(&pool[..num_seeds], rng);
            for i in 0..n {
                if record.infected(i as NodeId) {
                    statuses.set(l, i as NodeId);
                }
            }
            records.push(record);
        }
        ObservationSet::new(statuses, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> DiGraph {
        let edges: Vec<(NodeId, NodeId)> = (0..n - 1)
            .map(|i| (i as NodeId, (i + 1) as NodeId))
            .collect();
        DiGraph::from_edges(n, &edges)
    }

    #[test]
    fn seeds_are_always_infected() {
        let g = chain(5);
        let probs = EdgeProbs::constant(&g, 0.0);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(41);
        let rec = sim.run_once(&[2], &mut rng);
        assert_eq!(rec.times[2], 0);
        assert_eq!(rec.infected_count(), 1, "p = 0 spreads nothing");
    }

    #[test]
    fn full_probability_infects_reachable_set_with_bfs_times() {
        let g = chain(5);
        let probs = EdgeProbs::constant(&g, 1.0);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(42);
        let rec = sim.run_once(&[0], &mut rng);
        assert_eq!(rec.times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn infection_respects_edge_direction() {
        let g = chain(3);
        let probs = EdgeProbs::constant(&g, 1.0);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(43);
        let rec = sim.run_once(&[2], &mut rng);
        assert!(!rec.infected(0) && !rec.infected(1), "no backward spread");
    }

    #[test]
    fn duplicate_seeds_are_deduped() {
        let g = chain(3);
        let probs = EdgeProbs::constant(&g, 0.0);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(44);
        let rec = sim.run_once(&[1, 1, 1], &mut rng);
        assert_eq!(rec.sources, vec![1]);
    }

    #[test]
    fn each_edge_attempted_once() {
        // With p = 0.5 on a single edge, infection frequency across many
        // processes must be ~0.5 (one attempt only).
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let probs = EdgeProbs::constant(&g, 0.5);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(45);
        let trials = 10_000;
        let mut hits = 0;
        for _ in 0..trials {
            if sim.run_once(&[0], &mut rng).infected(1) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn observe_shapes_and_seed_count() {
        let mut rng = StdRng::seed_from_u64(46);
        let g = diffnet_graph::generators::erdos_renyi_gnm(40, 160, &mut rng);
        let probs = EdgeProbs::gaussian(&g, 0.3, 0.05, &mut rng);
        let sim = IndependentCascade::new(&g, &probs);
        let obs = sim.observe(
            IcConfig {
                initial_ratio: 0.15,
                num_processes: 30,
            },
            &mut rng,
        );
        assert_eq!(obs.num_processes(), 30);
        assert_eq!(obs.num_nodes(), 40);
        for rec in &obs.records {
            assert_eq!(rec.sources.len(), 6, "⌈0.15 × 40⌉ = 6 seeds");
            for &s in &rec.sources {
                assert_eq!(rec.times[s as usize], 0);
            }
        }
    }

    #[test]
    fn statuses_match_records() {
        let mut rng = StdRng::seed_from_u64(47);
        let g = diffnet_graph::generators::erdos_renyi_gnm(30, 120, &mut rng);
        let probs = EdgeProbs::gaussian(&g, 0.3, 0.05, &mut rng);
        let sim = IndependentCascade::new(&g, &probs);
        let obs = sim.observe(
            IcConfig {
                initial_ratio: 0.1,
                num_processes: 20,
            },
            &mut rng,
        );
        for (l, rec) in obs.records.iter().enumerate() {
            for i in 0..obs.num_nodes() {
                assert_eq!(rec.infected(i as NodeId), obs.statuses.get(l, i as NodeId));
            }
        }
    }

    #[test]
    fn infection_closure_only_reaches_out_neighbors() {
        // Every infected non-seed must have an infected in-neighbor with an
        // earlier infection time.
        let mut rng = StdRng::seed_from_u64(48);
        let g = diffnet_graph::generators::erdos_renyi_gnm(50, 300, &mut rng);
        let probs = EdgeProbs::gaussian(&g, 0.4, 0.05, &mut rng);
        let sim = IndependentCascade::new(&g, &probs);
        let obs = sim.observe(
            IcConfig {
                initial_ratio: 0.1,
                num_processes: 25,
            },
            &mut rng,
        );
        for rec in &obs.records {
            for i in 0..50u32 {
                let t = rec.times[i as usize];
                if t == UNINFECTED || t == 0 {
                    continue;
                }
                let has_earlier_parent = g
                    .in_neighbors(i)
                    .iter()
                    .any(|&p| rec.times[p as usize] == t - 1);
                assert!(
                    has_earlier_parent,
                    "node {i} infected at {t} with no parent at {}",
                    t - 1
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "initial_ratio")]
    fn observe_rejects_zero_ratio() {
        let g = chain(3);
        let probs = EdgeProbs::constant(&g, 0.3);
        let sim = IndependentCascade::new(&g, &probs);
        let mut rng = StdRng::seed_from_u64(49);
        sim.observe(
            IcConfig {
                initial_ratio: 0.0,
                num_processes: 1,
            },
            &mut rng,
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = IcConfig::default();
        assert_eq!(cfg.initial_ratio, 0.15);
        assert_eq!(cfg.num_processes, 150);
    }
}
