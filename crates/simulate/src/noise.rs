//! Observation-noise injection for robustness studies.
//!
//! Real infection monitoring is imperfect: asymptomatic infections are
//! missed (false negatives) and unrelated symptoms are misattributed
//! (false positives). These utilities corrupt recorded observations so
//! experiments can measure how inference degrades — complementing the
//! paper's argument that *timestamps* are the least reliable part of a
//! diffusion observation.

use crate::{DiffusionRecord, ObservationSet, StatusMatrix, UNINFECTED};
use diffnet_graph::NodeId;
use rand::Rng;

/// Flips recorded statuses: each infected entry is dropped with
/// probability `miss_rate` (false negative) and each uninfected entry is
/// set with probability `false_alarm_rate` (false positive).
///
/// Returns a bare status matrix — after corruption there is no consistent
/// cascade to pair it with, which mirrors reality: a noisy registry has no
/// reliable timeline either.
///
/// # Panics
///
/// Panics if either rate is outside `[0, 1]`.
pub fn flip_statuses<R: Rng + ?Sized>(
    statuses: &StatusMatrix,
    miss_rate: f64,
    false_alarm_rate: f64,
    rng: &mut R,
) -> StatusMatrix {
    assert!(
        (0.0..=1.0).contains(&miss_rate),
        "miss_rate must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&false_alarm_rate),
        "false_alarm_rate must be a probability"
    );
    let beta = statuses.num_processes();
    let n = statuses.num_nodes();
    let mut out = StatusMatrix::new(beta, n);
    for l in 0..beta {
        for i in 0..n as NodeId {
            let observed = if statuses.get(l, i) {
                !(miss_rate > 0.0 && rng.gen_bool(miss_rate))
            } else {
                false_alarm_rate > 0.0 && rng.gen_bool(false_alarm_rate)
            };
            if observed {
                out.set(l, i);
            }
        }
    }
    out
}

/// Perturbs recorded infection *times*: each non-seed infection time is
/// delayed by `1..=max_delay` extra rounds with probability `rate`
/// (incubation-period noise). Statuses are untouched, so status-only
/// methods are unaffected by construction.
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1]` or `max_delay == 0`.
pub fn delay_timestamps<R: Rng + ?Sized>(
    obs: &ObservationSet,
    rate: f64,
    max_delay: u32,
    rng: &mut R,
) -> ObservationSet {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    assert!(max_delay >= 1, "max_delay must be at least 1");
    let records: Vec<DiffusionRecord> = obs
        .records
        .iter()
        .map(|rec| {
            let times = rec
                .times
                .iter()
                .map(|&t| {
                    if t == UNINFECTED || t == 0 || rate == 0.0 || !rng.gen_bool(rate) {
                        t
                    } else {
                        t + rng.gen_range(1..=max_delay)
                    }
                })
                .collect();
            DiffusionRecord {
                sources: rec.sources.clone(),
                times,
            }
        })
        .collect();
    ObservationSet::new(obs.statuses.clone(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> StatusMatrix {
        let rows: Vec<Vec<bool>> = (0..200).map(|l| vec![l % 2 == 0, l % 3 == 0]).collect();
        StatusMatrix::from_rows(&rows)
    }

    #[test]
    fn zero_noise_is_identity() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(flip_statuses(&m, 0.0, 0.0, &mut rng), m);
    }

    #[test]
    fn full_miss_rate_clears_everything() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let out = flip_statuses(&m, 1.0, 0.0, &mut rng);
        assert_eq!(out.infected_fraction(), 0.0);
    }

    #[test]
    fn miss_rate_is_calibrated() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let out = flip_statuses(&m, 0.3, 0.0, &mut rng);
        let before = m.infection_count(0) as f64;
        let after = out.infection_count(0) as f64;
        assert!(
            (after / before - 0.7).abs() < 0.15,
            "kept {}",
            after / before
        );
    }

    #[test]
    fn false_alarms_only_add() {
        let m = sample();
        let mut rng = StdRng::seed_from_u64(4);
        let out = flip_statuses(&m, 0.0, 0.2, &mut rng);
        for l in 0..m.num_processes() {
            for i in 0..m.num_nodes() as NodeId {
                if m.get(l, i) {
                    assert!(out.get(l, i), "true infections must survive");
                }
            }
        }
        assert!(out.infected_fraction() > m.infected_fraction());
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        flip_statuses(&sample(), 1.5, 0.0, &mut rng);
    }

    #[test]
    fn delay_preserves_statuses_and_seeds() {
        use crate::{EdgeProbs, IcConfig, IndependentCascade};
        let g = diffnet_graph::DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let probs = EdgeProbs::constant(&g, 0.7);
        let mut rng = StdRng::seed_from_u64(6);
        let obs = IndependentCascade::new(&g, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: 50,
            },
            &mut rng,
        );
        let noisy = delay_timestamps(&obs, 1.0, 3, &mut rng);
        assert_eq!(noisy.statuses, obs.statuses);
        for (clean, dirty) in obs.records.iter().zip(&noisy.records) {
            assert_eq!(clean.sources, dirty.sources);
            for (i, (&tc, &td)) in clean.times.iter().zip(&dirty.times).enumerate() {
                if tc == UNINFECTED || tc == 0 {
                    assert_eq!(tc, td, "node {i}");
                } else {
                    assert!(td > tc && td <= tc + 3, "node {i}: {tc} -> {td}");
                }
            }
        }
    }
}
