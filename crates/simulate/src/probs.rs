//! Per-edge propagation probabilities.

use diffnet_graph::{DiGraph, NodeId};
use rand::Rng;

/// One draw from a normal distribution via the Box–Muller transform.
///
/// Hand-rolled so the workspace does not need `rand_distr`; adequate for
/// sampling propagation probabilities.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Propagation probabilities attached to the edges of a [`DiGraph`],
/// indexed by [`DiGraph::edge_index`].
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeProbs {
    probs: Vec<f64>,
}

impl EdgeProbs {
    /// Minimum / maximum probability after clamping; keeps every edge
    /// usable while staying a valid Bernoulli parameter.
    pub const CLAMP: (f64, f64) = (0.001, 0.999);

    /// Draws each edge's probability from `N(mu, sigma²)`, clamped into
    /// [`EdgeProbs::CLAMP`].
    ///
    /// The paper uses `mu ∈ [0.2, 0.4]` with `sigma = 0.05` so that "more
    /// than 95% of all propagation probabilities are within `μ ± 0.1`".
    pub fn gaussian<R: Rng + ?Sized>(g: &DiGraph, mu: f64, sigma: f64, rng: &mut R) -> Self {
        let probs = (0..g.edge_count())
            .map(|_| sample_normal(rng, mu, sigma).clamp(Self::CLAMP.0, Self::CLAMP.1))
            .collect();
        EdgeProbs { probs }
    }

    /// The same probability `p` on every edge.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn constant(g: &DiGraph, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        EdgeProbs {
            probs: vec![p; g.edge_count()],
        }
    }

    /// Builds from an explicit per-edge vector (must match
    /// [`DiGraph::edge_count`] and [`DiGraph::edge_index`] order).
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any value is outside `[0, 1]`.
    pub fn from_vec(g: &DiGraph, probs: Vec<f64>) -> Self {
        assert_eq!(
            probs.len(),
            g.edge_count(),
            "probability vector length must equal edge count"
        );
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "all probabilities must be in [0, 1]"
        );
        EdgeProbs { probs }
    }

    /// Probability of edge `u -> v` in `g`, or `None` if the edge does not
    /// exist.
    #[inline]
    pub fn get(&self, g: &DiGraph, u: NodeId, v: NodeId) -> Option<f64> {
        g.edge_index(u, v).map(|i| self.probs[i])
    }

    /// Probability at a dense edge index (see [`DiGraph::edge_index`]).
    #[inline]
    pub fn at(&self, edge_index: usize) -> f64 {
        self.probs[edge_index]
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Mean probability across edges (`NaN`-free; 0 for empty graphs).
    pub fn mean(&self) -> f64 {
        if self.probs.is_empty() {
            0.0
        } else {
            self.probs.iter().sum::<f64>() / self.probs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampling_moments() {
        let mut rng = StdRng::seed_from_u64(31);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 0.3, 0.05))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.3).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn paper_spread_property() {
        // "more than 95% of all propagation probabilities are within μ±0.1"
        let mut rng = StdRng::seed_from_u64(32);
        let within = (0..10_000)
            .map(|_| sample_normal(&mut rng, 0.3, 0.05))
            .filter(|p| (p - 0.3).abs() <= 0.1)
            .count();
        assert!(within > 9_500, "only {within}/10000 within ±0.1");
    }

    #[test]
    fn gaussian_probs_are_clamped() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = diffnet_graph::generators::erdos_renyi_gnm(50, 500, &mut rng);
        let probs = EdgeProbs::gaussian(&g, 0.05, 0.5, &mut rng);
        for i in 0..probs.len() {
            let p = probs.at(i);
            assert!((EdgeProbs::CLAMP.0..=EdgeProbs::CLAMP.1).contains(&p));
        }
    }

    #[test]
    fn constant_and_lookup() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let probs = EdgeProbs::constant(&g, 0.4);
        assert_eq!(probs.get(&g, 0, 1), Some(0.4));
        assert_eq!(probs.get(&g, 1, 0), None);
        assert_eq!(probs.mean(), 0.4);
        assert_eq!(probs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn constant_rejects_invalid() {
        let g = diffnet_graph::DiGraph::empty(2);
        EdgeProbs::constant(&g, 1.5);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn from_vec_rejects_wrong_length() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        EdgeProbs::from_vec(&g, vec![0.5]);
    }

    #[test]
    fn from_vec_matches_edge_index_order() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let probs = EdgeProbs::from_vec(&g, vec![0.1, 0.9]);
        assert_eq!(probs.get(&g, 0, 1), Some(0.1));
        assert_eq!(probs.get(&g, 1, 2), Some(0.9));
    }

    #[test]
    fn empty_graph_probs() {
        let g = diffnet_graph::DiGraph::empty(4);
        let probs = EdgeProbs::constant(&g, 0.3);
        assert!(probs.is_empty());
        assert_eq!(probs.mean(), 0.0);
    }
}
