//! Per-edge propagation probabilities.

use std::fmt;

use diffnet_graph::{DiGraph, NodeId};
use rand::Rng;

/// One draw from a normal distribution via the Box–Muller transform.
///
/// Hand-rolled so the workspace does not need `rand_distr`; adequate for
/// sampling propagation probabilities.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A per-edge weight vector whose length does not match the graph it is
/// used with. Conflating this with "edge absent" silently skips or
/// mis-indexes weights, so shape mismatches are surfaced as this typed
/// error by every `try_*` entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbShapeError {
    /// Edge count of the graph.
    pub expected: usize,
    /// Length of the weight vector.
    pub found: usize,
}

impl fmt::Display for ProbShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge weight vector has {} entries but the graph has {} edges",
            self.found, self.expected
        )
    }
}

impl std::error::Error for ProbShapeError {}

/// Propagation probabilities attached to the edges of a [`DiGraph`],
/// indexed by [`DiGraph::edge_index`].
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeProbs {
    probs: Vec<f64>,
}

impl EdgeProbs {
    /// Minimum / maximum probability after clamping; keeps every edge
    /// usable while staying a valid Bernoulli parameter.
    pub const CLAMP: (f64, f64) = (0.001, 0.999);

    /// Draws each edge's probability from `N(mu, sigma²)`, clamped into
    /// [`EdgeProbs::CLAMP`].
    ///
    /// The paper uses `mu ∈ [0.2, 0.4]` with `sigma = 0.05` so that "more
    /// than 95% of all propagation probabilities are within `μ ± 0.1`".
    pub fn gaussian<R: Rng + ?Sized>(g: &DiGraph, mu: f64, sigma: f64, rng: &mut R) -> Self {
        let probs = (0..g.edge_count())
            .map(|_| sample_normal(rng, mu, sigma).clamp(Self::CLAMP.0, Self::CLAMP.1))
            .collect();
        EdgeProbs { probs }
    }

    /// The same probability `p` on every edge.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn constant(g: &DiGraph, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        EdgeProbs {
            probs: vec![p; g.edge_count()],
        }
    }

    /// Builds from an explicit per-edge vector (must match
    /// [`DiGraph::edge_count`] and [`DiGraph::edge_index`] order).
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any value is outside `[0, 1]`.
    /// Use [`EdgeProbs::try_from_vec`] when the vector is caller input.
    pub fn from_vec(g: &DiGraph, probs: Vec<f64>) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "all probabilities must be in [0, 1]"
        );
        Self::try_from_vec(g, probs).expect("probability vector length must equal edge count")
    }

    /// [`from_vec`](Self::from_vec) with the shape mismatch as a typed
    /// error instead of a panic. Values are still asserted into `[0, 1]`
    /// by [`from_vec`]; this method only validates the shape, for callers
    /// whose values are already probabilities.
    pub fn try_from_vec(g: &DiGraph, probs: Vec<f64>) -> Result<Self, ProbShapeError> {
        if probs.len() != g.edge_count() {
            return Err(ProbShapeError {
                expected: g.edge_count(),
                found: probs.len(),
            });
        }
        Ok(EdgeProbs { probs })
    }

    /// Checks that this vector covers exactly the edges of `g`; the typed
    /// entry points call this before any per-edge indexing can go wrong.
    pub fn validate_for(&self, g: &DiGraph) -> Result<(), ProbShapeError> {
        if self.probs.len() != g.edge_count() {
            return Err(ProbShapeError {
                expected: g.edge_count(),
                found: self.probs.len(),
            });
        }
        Ok(())
    }

    /// Probability of edge `u -> v` in `g`, or `None` if the edge does not
    /// exist.
    #[inline]
    pub fn get(&self, g: &DiGraph, u: NodeId, v: NodeId) -> Option<f64> {
        g.edge_index(u, v).map(|i| self.probs[i])
    }

    /// Probability at a dense edge index (see [`DiGraph::edge_index`]).
    #[inline]
    pub fn at(&self, edge_index: usize) -> f64 {
        self.probs[edge_index]
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Mean probability across edges (`NaN`-free; 0 for empty graphs).
    pub fn mean(&self) -> f64 {
        if self.probs.is_empty() {
            0.0
        } else {
            self.probs.iter().sum::<f64>() / self.probs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampling_moments() {
        let mut rng = StdRng::seed_from_u64(31);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 0.3, 0.05))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.3).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn paper_spread_property() {
        // "more than 95% of all propagation probabilities are within μ±0.1"
        let mut rng = StdRng::seed_from_u64(32);
        let within = (0..10_000)
            .map(|_| sample_normal(&mut rng, 0.3, 0.05))
            .filter(|p| (p - 0.3).abs() <= 0.1)
            .count();
        assert!(within > 9_500, "only {within}/10000 within ±0.1");
    }

    #[test]
    fn gaussian_probs_are_clamped() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = diffnet_graph::generators::erdos_renyi_gnm(50, 500, &mut rng);
        let probs = EdgeProbs::gaussian(&g, 0.05, 0.5, &mut rng);
        for i in 0..probs.len() {
            let p = probs.at(i);
            assert!((EdgeProbs::CLAMP.0..=EdgeProbs::CLAMP.1).contains(&p));
        }
    }

    #[test]
    fn constant_and_lookup() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let probs = EdgeProbs::constant(&g, 0.4);
        assert_eq!(probs.get(&g, 0, 1), Some(0.4));
        assert_eq!(probs.get(&g, 1, 0), None);
        assert_eq!(probs.mean(), 0.4);
        assert_eq!(probs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn constant_rejects_invalid() {
        let g = diffnet_graph::DiGraph::empty(2);
        EdgeProbs::constant(&g, 1.5);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn from_vec_rejects_wrong_length() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        EdgeProbs::from_vec(&g, vec![0.5]);
    }

    #[test]
    fn try_from_vec_reports_shape_mismatch() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let err = EdgeProbs::try_from_vec(&g, vec![0.5]).expect_err("wrong length");
        assert_eq!(
            err,
            ProbShapeError {
                expected: 2,
                found: 1
            }
        );
        assert!(err.to_string().contains("1 entries"));
        assert!(err.to_string().contains("2 edges"));
    }

    #[test]
    fn validate_for_catches_cross_graph_reuse() {
        let small = diffnet_graph::DiGraph::from_edges(3, &[(0, 1)]);
        let big = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let probs = EdgeProbs::constant(&small, 0.3);
        assert_eq!(probs.validate_for(&small), Ok(()));
        assert_eq!(
            probs.validate_for(&big),
            Err(ProbShapeError {
                expected: 3,
                found: 1
            })
        );
    }

    #[test]
    fn from_vec_matches_edge_index_order() {
        let g = diffnet_graph::DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let probs = EdgeProbs::from_vec(&g, vec![0.1, 0.9]);
        assert_eq!(probs.get(&g, 0, 1), Some(0.1));
        assert_eq!(probs.get(&g, 1, 2), Some(0.9));
    }

    #[test]
    fn empty_graph_probs() {
        let g = diffnet_graph::DiGraph::empty(4);
        let probs = EdgeProbs::constant(&g, 0.3);
        assert!(probs.is_empty());
        assert_eq!(probs.mean(), 0.0);
    }
}
