//! MulTree (Gomez-Rodriguez & Schölkopf, ICML 2012): submodular inference
//! of diffusion networks considering **all** propagation trees supported by
//! each cascade.
//!
//! For a time-stamped cascade, every propagation tree assigns each infected
//! non-seed node one parent among the nodes infected strictly earlier; the
//! total weight of all trees therefore factorizes into a per-node product
//! of the summed weights of admissible in-edges (the directed analogue of
//! the Matrix-Tree factorization for time-ordered DAGs). With uniform edge
//! weight `w` and an `ε` floor for "no selected parent yet", the cascade
//! log-likelihood of an edge set `E` is
//!
//! ```text
//! Σ_c Σ_{i infected non-seed in c} log(ε + w · |{j ∈ E_in(i) : t_j < t_i}|)
//! ```
//!
//! which is monotone submodular in `E`, so lazy greedy edge selection
//! enjoys the classic `1 − 1/e` guarantee. Like the paper, the algorithm
//! receives the true edge count `m` as its budget.

use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_simulate::ObservationSet;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// MulTree configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MulTreeConfig {
    /// Weight floor for a node with no selected admissible parent
    /// (ε in the objective; must be positive).
    pub epsilon: f64,
}

impl Default for MulTreeConfig {
    fn default() -> Self {
        MulTreeConfig { epsilon: 1e-4 }
    }
}

/// The MulTree estimator.
#[derive(Clone, Debug, Default)]
pub struct MulTree {
    config: MulTreeConfig,
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    edge: usize,
    round: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are not NaN")
            .then_with(|| other.edge.cmp(&self.edge))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl MulTree {
    /// MulTree with the default `ε`.
    pub fn new() -> Self {
        MulTree::default()
    }

    /// MulTree with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn with_config(config: MulTreeConfig) -> Self {
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        MulTree { config }
    }

    /// Greedily selects `m` edges maximizing the all-trees cascade
    /// likelihood.
    pub fn infer(&self, obs: &ObservationSet, m: usize) -> DiGraph {
        let n = obs.num_nodes();
        let eps = self.config.epsilon;

        // Candidate edges: ordered pairs observed with t_j < t_i, with the
        // list of (cascade, child) slots each edge can explain.
        let mut edge_ids: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut edge_list: Vec<(NodeId, NodeId)> = Vec::new();
        // For each edge, the (cascade, child-slot) pairs it is admissible in.
        let mut covers: Vec<Vec<u32>> = Vec::new();
        // Slot table: one entry per (cascade, infected non-seed node).
        let mut slot_count: Vec<u32> = Vec::new(); // selected admissible parents per slot

        let mut slot_ids: HashMap<(u32, NodeId), u32> = HashMap::new();
        for (c, rec) in obs.records.iter().enumerate() {
            let cascade = rec.cascade();
            for (a, &(i, ti)) in cascade.iter().enumerate() {
                if ti == 0 {
                    continue;
                }
                let slot = *slot_ids.entry((c as u32, i)).or_insert_with(|| {
                    slot_count.push(0);
                    (slot_count.len() - 1) as u32
                });
                for &(j, tj) in &cascade[..a] {
                    if tj >= ti {
                        continue;
                    }
                    let eid = *edge_ids.entry((j, i)).or_insert_with(|| {
                        edge_list.push((j, i));
                        covers.push(Vec::new());
                        edge_list.len() - 1
                    });
                    covers[eid].push(slot);
                }
            }
        }

        // Marginal gain of an edge: Σ over its slots of
        // log(ε + k + 1) − log(ε + k), where k is the slot's current count.
        let gain_of = |eid: usize, slot_count: &[u32]| -> f64 {
            covers[eid]
                .iter()
                .map(|&s| {
                    let k = slot_count[s as usize] as f64;
                    (eps + k + 1.0).ln() - (eps + k).ln()
                })
                .sum()
        };

        // Lazy greedy.
        let mut heap: BinaryHeap<HeapEntry> = (0..edge_list.len())
            .map(|eid| HeapEntry {
                gain: gain_of(eid, &slot_count),
                edge: eid,
                round: 0,
            })
            .collect();
        let mut selected = GraphBuilder::new(n);
        let mut picked = 0usize;
        let mut round = 0usize;
        while picked < m {
            let Some(top) = heap.pop() else { break };
            if top.round == round {
                // Fresh evaluation: take it.
                let (u, v) = edge_list[top.edge];
                selected.add_edge(u, v);
                for &s in &covers[top.edge] {
                    slot_count[s as usize] += 1;
                }
                picked += 1;
                round += 1;
            } else {
                // Stale: re-evaluate and push back (valid by submodularity).
                let fresh = gain_of(top.edge, &slot_count);
                heap.push(HeapEntry {
                    gain: fresh,
                    edge: top.edge,
                    round,
                });
            }
        }
        selected.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, seed: u64, beta: usize) -> ObservationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, 0.5);
        IndependentCascade::new(truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: beta,
            },
            &mut rng,
        )
    }

    #[test]
    fn respects_edge_budget() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 71, 200);
        let g = MulTree::new().infer(&obs, 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn recovers_chain_reasonably() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 72, 400);
        let g = MulTree::new().infer(&obs, truth.edge_count());
        let tp = g.edges().filter(|&(u, v)| truth.has_edge(u, v)).count();
        assert!(
            tp >= 3,
            "only {tp}/5 true edges; inferred {:?}",
            g.edge_vec()
        );
    }

    #[test]
    fn empty_observations_give_empty_graph() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 73, 100).truncated(0);
        let g = MulTree::new().infer(&obs, 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn budget_larger_than_candidates() {
        let truth = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let obs = observe(&truth, 74, 50);
        let g = MulTree::new().infer(&obs, 1000);
        assert!(g.edge_count() <= 3 * 2, "bounded by candidate pairs");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn invalid_epsilon_rejected() {
        MulTree::with_config(MulTreeConfig { epsilon: 0.0 });
    }

    #[test]
    fn edges_only_between_time_ordered_pairs() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let obs = observe(&truth, 75, 200);
        let g = MulTree::new().infer(&obs, 4);
        for (u, v) in g.edges() {
            let ordered = obs.records.iter().any(|rec| {
                let (tu, tv) = (rec.times[u as usize], rec.times[v as usize]);
                tu != diffnet_simulate::UNINFECTED && tv != diffnet_simulate::UNINFECTED && tu < tv
            });
            assert!(ordered, "edge ({u},{v}) never observed time-ordered");
        }
    }
}
