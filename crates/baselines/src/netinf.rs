//! NetInf (Gomez-Rodriguez, Leskovec & Krause, KDD 2010): greedy
//! submodular inference considering only the **most probable** propagation
//! tree per cascade.
//!
//! Where MulTree credits an edge for every admissible parent slot it joins
//! (sum over trees), NetInf's best-tree objective only improves when an
//! edge becomes a node's *first* — i.e. best — explanation in a cascade.
//! With uniform edge weights the marginal gain of edge `(j, i)` is the
//! number of (cascade, infected non-seed `i`) slots where `t_j < t_i` and
//! no previously selected edge already explains `i`; ties are broken
//! toward shorter time gaps, preferring direct (one-round) transmissions.
//!
//! Provided as an extension baseline: the paper benchmarks MulTree (the
//! stronger sibling) but NetInf is the canonical reference system.

use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
use diffnet_simulate::ObservationSet;
use std::collections::HashMap;

/// The NetInf estimator.
#[derive(Clone, Debug, Default)]
pub struct NetInf;

impl NetInf {
    /// A NetInf estimator.
    pub fn new() -> Self {
        NetInf
    }

    /// Greedily selects `m` edges maximizing best-tree cascade coverage.
    pub fn infer(&self, obs: &ObservationSet, m: usize) -> DiGraph {
        let n = obs.num_nodes();

        // covers[eid] = slots (cascade × child) the edge can explain;
        // weight favors one-round transmissions.
        let mut edge_ids: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut edge_list: Vec<(NodeId, NodeId)> = Vec::new();
        let mut covers: Vec<Vec<(u32, f64)>> = Vec::new();
        let mut num_slots = 0u32;
        let mut slot_ids: HashMap<(u32, NodeId), u32> = HashMap::new();

        for (c, rec) in obs.records.iter().enumerate() {
            let cascade = rec.cascade();
            for (a, &(i, ti)) in cascade.iter().enumerate() {
                if ti == 0 {
                    continue;
                }
                let slot = *slot_ids.entry((c as u32, i)).or_insert_with(|| {
                    num_slots += 1;
                    num_slots - 1
                });
                for &(j, tj) in &cascade[..a] {
                    if tj >= ti {
                        continue;
                    }
                    let eid = *edge_ids.entry((j, i)).or_insert_with(|| {
                        edge_list.push((j, i));
                        covers.push(Vec::new());
                        edge_list.len() - 1
                    });
                    // Exponentially decaying credit in the time gap: the
                    // most probable tree links consecutive rounds.
                    let w = 0.5f64.powi((ti - tj) as i32 - 1);
                    covers[eid].push((slot, w));
                }
            }
        }

        let mut best_cover = vec![0.0f64; num_slots as usize];
        let mut selected = GraphBuilder::new(n);
        let mut taken = vec![false; edge_list.len()];

        for _ in 0..m {
            // Plain greedy re-evaluation (candidate sets are small enough;
            // the best-tree gain is also submodular so this is exact).
            let mut best: Option<(f64, usize)> = None;
            for eid in 0..edge_list.len() {
                if taken[eid] {
                    continue;
                }
                let gain: f64 = covers[eid]
                    .iter()
                    .map(|&(s, w)| (w - best_cover[s as usize]).max(0.0))
                    .sum();
                if best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, eid));
                }
            }
            let Some((gain, eid)) = best else { break };
            if gain <= 0.0 {
                break;
            }
            taken[eid] = true;
            let (u, v) = edge_list[eid];
            selected.add_edge(u, v);
            for &(s, w) in &covers[eid] {
                let b = &mut best_cover[s as usize];
                if w > *b {
                    *b = w;
                }
            }
        }
        selected.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, seed: u64, beta: usize) -> ObservationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, 0.5);
        IndependentCascade::new(truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: beta,
            },
            &mut rng,
        )
    }

    #[test]
    fn recovers_most_of_a_chain() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 81, 400);
        let g = NetInf::new().infer(&obs, truth.edge_count());
        let tp = g.edges().filter(|&(u, v)| truth.has_edge(u, v)).count();
        assert!(tp >= 3, "only {tp}/5 true edges; got {:?}", g.edge_vec());
    }

    #[test]
    fn budget_respected() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let obs = observe(&truth, 82, 150);
        assert_eq!(NetInf::new().infer(&obs, 2).edge_count(), 2);
    }

    #[test]
    fn stops_when_gain_exhausted() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 83, 50);
        let g = NetInf::new().infer(&obs, 100);
        // Candidates are limited and gains saturate; no runaway edges.
        assert!(g.edge_count() <= 6);
    }

    #[test]
    fn empty_observations() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 84, 50).truncated(0);
        assert_eq!(NetInf::new().infer(&obs, 3).edge_count(), 0);
    }
}
