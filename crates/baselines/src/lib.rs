#![warn(missing_docs)]
//! # diffnet-baselines
//!
//! The baseline diffusion-network-inference algorithms the TENDS paper
//! (ICDE 2020) compares against, plus two canonical extensions:
//!
//! | Algorithm | Inputs | Reference |
//! |---|---|---|
//! | [`NetRate`] | cascades (timestamps) | Gomez-Rodriguez et al., ICML 2011 |
//! | [`MulTree`] | cascades + true edge count `m` | Gomez-Rodriguez & Schölkopf, ICML 2012 |
//! | [`Lift`] | sources + final statuses + `m` | Amin, Heidari & Kearns, ICML 2014 |
//! | [`NetInf`] (extension) | cascades + `m` | Gomez-Rodriguez et al., KDD 2010 |
//! | [`PathReconstruction`] (extension) | cascade-derived path triples + `m` | Gripon & Rabbat, ISIT 2013 |
//!
//! Every baseline consumes a [`diffnet_simulate::ObservationSet`], which
//! carries exactly the extra information the paper grants each method
//! (timestamped cascades, seed sets, the true `m`); TENDS itself uses only
//! the final-status matrix.

mod lift;
mod multree;
mod netinf;
mod netrate;
mod path;
mod weighted;

pub use lift::{Lift, LiftVariant};
pub use multree::{MulTree, MulTreeConfig};
pub use netinf::NetInf;
pub use netrate::{NetRate, NetRateConfig};
pub use path::PathReconstruction;
pub use weighted::WeightedGraph;
