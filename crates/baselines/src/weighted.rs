//! Weighted inference output shared by the baselines.
//!
//! NetRate infers a *rate* per potential edge and LIFT a *lifting effect*
//! per pair; turning those into an edge set requires either a threshold,
//! a budget `m`, or — the paper's preferential treatment for NetRate —
//! the threshold that maximizes the F-score against the ground truth.

use diffnet_graph::{DiGraph, GraphBuilder, NodeId};

/// A set of scored potential edges over `n` nodes.
#[derive(Clone, Debug, Default)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl WeightedGraph {
    /// An empty weighted graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds a scored potential edge. Weights need not be probabilities.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the weight is NaN.
    pub fn push(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge out of range"
        );
        assert!(!w.is_nan(), "edge weight must not be NaN");
        self.edges.push((u, v, w));
    }

    /// Number of scored pairs.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no pairs are scored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Iterates over `(u, v, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// The edges with weight strictly above `t`.
    pub fn threshold(&self, t: f64) -> DiGraph {
        let mut b = GraphBuilder::new(self.n);
        for &(u, v, w) in &self.edges {
            if w > t {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The `m` highest-weighted edges (ties broken by `(u, v)` order for
    /// determinism).
    pub fn top_m(&self, m: usize) -> DiGraph {
        let mut sorted = self.edges.clone();
        sorted.sort_unstable_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("weights are not NaN")
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        sorted.truncate(m);
        let mut b = GraphBuilder::new(self.n);
        for (u, v, _) in sorted {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The paper's preferential NetRate treatment: sweeps all weight
    /// thresholds and returns the graph (and F-score) of the best one
    /// against `truth`.
    ///
    /// Sorting edges by descending weight makes every candidate threshold a
    /// prefix; with `TP(k)` the true positives among the top-`k`,
    /// `F(k) = 2·TP(k) / (k + m_true)` is maximized in one pass.
    ///
    /// # Panics
    ///
    /// Panics if the node counts disagree.
    pub fn best_fscore_graph(&self, truth: &DiGraph) -> (DiGraph, f64) {
        assert_eq!(truth.node_count(), self.n, "node set mismatch");
        let mut sorted = self.edges.clone();
        sorted.sort_unstable_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("weights are not NaN")
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        let m_true = truth.edge_count();
        let mut tp = 0usize;
        let mut best_k = 0usize;
        let mut best_f = if m_true == 0 { 1.0 } else { 0.0 };
        for (k, &(u, v, _)) in sorted.iter().enumerate() {
            if truth.has_edge(u, v) {
                tp += 1;
            }
            let f = 2.0 * tp as f64 / ((k + 1 + m_true) as f64);
            if f > best_f {
                best_f = f;
                best_k = k + 1;
            }
        }
        let mut b = GraphBuilder::new(self.n);
        for &(u, v, _) in &sorted[..best_k] {
            b.add_edge(u, v);
        }
        (b.build(), best_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        let mut w = WeightedGraph::new(4);
        w.push(0, 1, 0.9);
        w.push(1, 2, 0.7);
        w.push(2, 3, 0.2);
        w.push(3, 0, 0.05);
        w
    }

    #[test]
    fn threshold_selects_heavy_edges() {
        let g = sample().threshold(0.5);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn top_m_selects_exactly_m() {
        let g = sample().top_m(3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_edge(3, 0), "lowest weight excluded");
    }

    #[test]
    fn top_m_larger_than_edges() {
        let g = sample().top_m(10);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn best_fscore_finds_optimal_prefix() {
        // Truth: {0->1, 1->2}. Weights rank them first, so the best prefix
        // is exactly those two: F = 1.
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let (g, f) = sample().best_fscore_graph(&truth);
        assert_eq!(f, 1.0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn best_fscore_with_interleaved_noise() {
        // Truth edge ranked below a false one: best F < 1 but > 0.
        let truth = DiGraph::from_edges(4, &[(2, 3)]);
        let (g, f) = sample().best_fscore_graph(&truth);
        assert!(g.has_edge(2, 3));
        assert!(
            (f - 0.5).abs() < 1e-9,
            "3 picked : 1 TP → F = 2/(3+1) = 0.5, got {f}"
        );
    }

    #[test]
    fn best_fscore_empty_truth() {
        let truth = DiGraph::empty(4);
        let (g, f) = sample().best_fscore_graph(&truth);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(f, 1.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_weight_rejected() {
        WeightedGraph::new(2).push(0, 1, f64::NAN);
    }

    #[test]
    fn iteration_and_counts() {
        let w = sample();
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.node_count(), 4);
        assert_eq!(w.iter().count(), 4);
    }
}
