//! NetRate (Gomez-Rodriguez, Balduzzi & Schölkopf, ICML 2011): convex
//! maximum-likelihood estimation of pairwise transmission rates from
//! timestamped cascades.
//!
//! Under the exponential transmission model, the log-likelihood of the
//! observed cascades in the rates `α_ji ≥ 0` is
//!
//! ```text
//! Σ_c [ Σ_{i uninfected in c}            Σ_{j infected in c} −α_ji (T_c − t_j)
//!     + Σ_{i infected, non-seed in c} (  Σ_{j: t_j < t_i}    −α_ji (t_i − t_j)
//!                                      + log Σ_{j: t_j < t_i} α_ji           ) ]
//! ```
//!
//! which is concave, so projected gradient ascent converges to the global
//! optimum (the original implementation uses CVX; same optimum). Rates are
//! only instantiated for ordered pairs `(j, i)` that appear with
//! `t_j < t_i` in at least one cascade — any other rate has a strictly
//! negative gradient everywhere and stays at zero.
//!
//! The output is a [`WeightedGraph`] of rates; the experiment harness
//! grants NetRate the paper's preferential treatment via
//! [`WeightedGraph::best_fscore_graph`].

use crate::weighted::WeightedGraph;
use diffnet_observe::Recorder;
use diffnet_simulate::{ObservationSet, UNINFECTED};
use std::collections::HashMap;

/// Gradient-ascent hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetRateConfig {
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Initial step size (backtracked internally).
    pub step_size: f64,
    /// Convergence tolerance on the mean absolute rate update.
    pub tolerance: f64,
}

impl Default for NetRateConfig {
    fn default() -> Self {
        NetRateConfig {
            max_iters: 200,
            step_size: 0.1,
            tolerance: 1e-5,
        }
    }
}

/// The NetRate estimator.
#[derive(Clone, Debug, Default)]
pub struct NetRate {
    config: NetRateConfig,
}

/// One cascade, preprocessed: infected nodes with times, and the
/// uninfected survivors.
struct Cascade {
    /// `(node, time)` sorted by time; seeds (t = 0) included.
    infected: Vec<(u32, u32)>,
    /// Nodes never infected in this cascade.
    uninfected: Vec<u32>,
    /// Observation horizon `T_c` (one round past the last infection).
    horizon: f64,
}

impl NetRate {
    /// NetRate with default optimization parameters.
    pub fn new() -> Self {
        NetRate::default()
    }

    /// NetRate with explicit optimization parameters.
    pub fn with_config(config: NetRateConfig) -> Self {
        NetRate { config }
    }

    /// Infers transmission rates from the cascades in `obs`.
    ///
    /// The objective splits into a part *linear* in the rates (all survival
    /// terms, whose gradient is a constant vector) and the concave
    /// `log`-hazard terms. Both are compiled into flat index arrays up
    /// front so each ascent iteration is pure array traversal.
    pub fn infer(&self, obs: &ObservationSet) -> WeightedGraph {
        self.infer_observed(obs, Recorder::disabled())
    }

    /// [`infer`](Self::infer) with instrumentation, so TENDS-vs-NetRate
    /// wall time can be attributed per phase: objective compilation
    /// (`netrate_compile`) and gradient ascent (`netrate_ascent`) are
    /// timed, and the recorder receives the instantiated pair count,
    /// hazard-slot count, ascent iterations, and step halvings.
    pub fn infer_observed(&self, obs: &ObservationSet, rec: &Recorder) -> WeightedGraph {
        const FLOOR: f64 = 1e-12;
        let compile_phase = rec.phase("netrate_compile");
        let n = obs.num_nodes();
        let cascades: Vec<Cascade> = obs
            .records
            .iter()
            .map(|rec| {
                let infected = rec.cascade();
                let uninfected: Vec<u32> = (0..n as u32)
                    .filter(|&i| rec.times[i as usize] == UNINFECTED)
                    .collect();
                let horizon = (rec.horizon() + 1) as f64;
                Cascade {
                    infected,
                    uninfected,
                    horizon,
                }
            })
            .collect();

        // Instantiate a rate for each ordered pair observed with
        // t_j < t_i; everything else is provably zero at the optimum.
        let mut pair_index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for c in &cascades {
            for (a, &(i, ti)) in c.infected.iter().enumerate() {
                if ti == 0 {
                    continue; // seeds have no parents to explain
                }
                for &(j, tj) in &c.infected[..a] {
                    if tj < ti {
                        pair_index.entry((j, i)).or_insert_with(|| {
                            pairs.push((j, i));
                            (pairs.len() - 1) as u32
                        });
                    }
                }
            }
        }
        let num_pairs = pairs.len();

        // Constant (linear) gradient component: −Σ elapsed exposure time,
        // over both uninfected survivors and infected non-seeds.
        let mut base_grad = vec![0.0f64; num_pairs];
        // Hazard slots: for each (cascade, infected non-seed) the pair
        // indices of its potential parents, flattened CSR-style.
        let mut slot_offsets: Vec<u32> = vec![0];
        let mut slot_pairs: Vec<u32> = Vec::new();

        for c in &cascades {
            for &(j, tj) in &c.infected {
                let weight = c.horizon - tj as f64;
                for &i in &c.uninfected {
                    if let Some(&idx) = pair_index.get(&(j, i)) {
                        base_grad[idx as usize] -= weight;
                    }
                }
            }
            for (a, &(i, ti)) in c.infected.iter().enumerate() {
                if ti == 0 {
                    continue;
                }
                for &(j, tj) in &c.infected[..a] {
                    if tj >= ti {
                        continue;
                    }
                    let idx = pair_index[&(j, i)];
                    base_grad[idx as usize] -= (ti - tj) as f64;
                    slot_pairs.push(idx);
                }
                slot_offsets.push(slot_pairs.len() as u32);
            }
        }

        drop(compile_phase);
        if rec.is_enabled() {
            rec.add("netrate_pairs", num_pairs as u64);
            rec.add("netrate_hazard_slots", (slot_offsets.len() - 1) as u64);
        }

        let ascent_phase = rec.phase("netrate_ascent");
        let mut alpha = vec![0.05f64; num_pairs];
        let mut grad = vec![0.0f64; num_pairs];
        let mut step = self.config.step_size;
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0u64;
        let mut halvings = 0u64;

        for _ in 0..self.config.max_iters {
            iterations += 1;
            grad.copy_from_slice(&base_grad);
            let mut ll: f64 = alpha.iter().zip(&base_grad).map(|(a, g)| a * g).sum();
            for w in slot_offsets.windows(2) {
                let slot = &slot_pairs[w[0] as usize..w[1] as usize];
                let hazard: f64 = slot
                    .iter()
                    .map(|&idx| alpha[idx as usize])
                    .sum::<f64>()
                    .max(FLOOR);
                ll += hazard.ln();
                let inv = 1.0 / hazard;
                for &idx in slot {
                    grad[idx as usize] += inv;
                }
            }

            // Simple step-size control: shrink on non-improvement.
            if ll < prev_ll {
                step *= 0.5;
                halvings += 1;
                if step < 1e-6 {
                    break;
                }
            }
            prev_ll = ll;

            let mut max_update = 0.0f64;
            for (a, g) in alpha.iter_mut().zip(&grad) {
                let new = (*a + step * g).max(0.0);
                max_update = max_update.max((new - *a).abs());
                *a = new;
            }
            if max_update < self.config.tolerance {
                break;
            }
        }
        drop(ascent_phase);
        if rec.is_enabled() {
            rec.add("netrate_iterations", iterations);
            rec.add("netrate_step_halvings", halvings);
        }

        let mut out = WeightedGraph::new(n);
        for (&(j, i), &idx) in &pair_index {
            if alpha[idx as usize] > 0.0 {
                out.push(j, i, alpha[idx as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_graph::DiGraph;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, seed: u64, beta: usize) -> ObservationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, 0.5);
        IndependentCascade::new(truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: beta,
            },
            &mut rng,
        )
    }

    #[test]
    fn recovers_chain_with_best_threshold() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 61, 400);
        let weighted = NetRate::new().infer(&obs);
        let (_, f) = weighted.best_fscore_graph(&truth);
        assert!(f > 0.7, "best-threshold F-score {f}");
    }

    #[test]
    fn rates_are_nonnegative() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4)]);
        let obs = observe(&truth, 62, 150);
        let weighted = NetRate::new().infer(&obs);
        for (_, _, w) in weighted.iter() {
            assert!(w > 0.0);
        }
    }

    #[test]
    fn true_edges_outrank_random_pairs_on_average() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 63, 400);
        let weighted = NetRate::new().infer(&obs);
        let mut true_w = Vec::new();
        let mut false_w = Vec::new();
        for (u, v, w) in weighted.iter() {
            if truth.has_edge(u, v) {
                true_w.push(w);
            } else {
                false_w.push(w);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&true_w) > mean(&false_w),
            "true mean {} vs false mean {}",
            mean(&true_w),
            mean(&false_w)
        );
    }

    #[test]
    fn no_cascades_yields_empty_output() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 64, 200).truncated(0);
        let weighted = NetRate::new().infer(&obs);
        assert!(weighted.is_empty());
    }

    #[test]
    fn likelihood_objective_improves_rate_separation_with_data() {
        // With 4x the cascades, the gap between true-edge and false-pair
        // rates should not shrink (convex MLE concentrates).
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let gap = |beta: usize, seed: u64| {
            let obs = observe(&truth, seed, beta);
            let weighted = NetRate::new().infer(&obs);
            let mut t = Vec::new();
            let mut f = Vec::new();
            for (u, v, w) in weighted.iter() {
                if truth.has_edge(u, v) {
                    t.push(w);
                } else {
                    f.push(w);
                }
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            mean(&t) - mean(&f)
        };
        let small = gap(100, 66);
        let large = gap(400, 66);
        assert!(
            large > 0.5 * small && large > 0.0,
            "separation degraded: β=100 gap {small}, β=400 gap {large}"
        );
    }

    #[test]
    fn zero_iterations_keeps_uniform_initialization() {
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let obs = observe(&truth, 67, 60);
        let weighted = NetRate::with_config(NetRateConfig {
            max_iters: 0,
            ..Default::default()
        })
        .infer(&obs);
        for (_, _, w) in weighted.iter() {
            assert!((w - 0.05).abs() < 1e-12, "untouched init, got {w}");
        }
    }

    #[test]
    fn observed_inference_matches_plain_and_records_phases() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let obs = observe(&truth, 68, 200);
        let plain = NetRate::new().infer(&obs);
        let rec = Recorder::new();
        let observed = NetRate::new().infer_observed(&obs, &rec);
        let collect = |g: &WeightedGraph| {
            let mut v: Vec<_> = g.iter().collect();
            v.sort_by_key(|a| (a.0, a.1));
            v
        };
        assert_eq!(collect(&plain), collect(&observed));

        let snap = rec.snapshot();
        let names: Vec<_> = snap.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["netrate_compile", "netrate_ascent"]);
        assert!(snap.counters["netrate_pairs"] > 0);
        assert!(snap.counters["netrate_iterations"] > 0);
    }

    #[test]
    fn config_is_respected() {
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let obs = observe(&truth, 65, 100);
        let quick = NetRate::with_config(NetRateConfig {
            max_iters: 1,
            ..Default::default()
        })
        .infer(&obs);
        // One iteration still produces rates for observed precedence pairs.
        assert!(!quick.is_empty());
    }
}
