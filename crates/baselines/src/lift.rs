//! LIFT (Amin, Heidari & Kearns, ICML 2014): learning from contagion
//! without timestamps, using diffusion **sources** and final statuses.
//!
//! The lifting effect of node `u` on node `v` measures how much `u`'s
//! presence among the initially infected nodes raises the probability that
//! `v` ends up infected:
//!
//! ```text
//! lift(u, v) = P̂(v infected | u ∈ seeds) − P̂(v infected)      (difference)
//! lift(u, v) = P̂(v infected | u ∈ seeds) / P̂(v infected)      (ratio)
//! ```
//!
//! Pairs with the largest lifting effects are declared edges; like the
//! paper, the algorithm receives the true edge count `m`.

use crate::weighted::WeightedGraph;
use diffnet_graph::{DiGraph, NodeId};
use diffnet_simulate::ObservationSet;

/// Which lifting-effect estimator to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LiftVariant {
    /// `P̂(v | u seeded) − P̂(v)`. Default: well-behaved when `P̂(v)` is
    /// small.
    #[default]
    Difference,
    /// `P̂(v | u seeded) / P̂(v)` (0 when `P̂(v) = 0`).
    Ratio,
}

/// The LIFT estimator.
#[derive(Clone, Debug, Default)]
pub struct Lift {
    variant: LiftVariant,
}

impl Lift {
    /// LIFT with the difference estimator.
    pub fn new() -> Self {
        Lift::default()
    }

    /// LIFT with an explicit variant.
    pub fn with_variant(variant: LiftVariant) -> Self {
        Lift { variant }
    }

    /// Scores every ordered pair by lifting effect.
    pub fn scores(&self, obs: &ObservationSet) -> WeightedGraph {
        let n = obs.num_nodes();
        let beta = obs.num_processes();
        let mut out = WeightedGraph::new(n);
        if beta == 0 {
            return out;
        }

        // Per node: processes seeded by it, and overall infection counts.
        let mut seeded_in: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (l, rec) in obs.records.iter().enumerate() {
            for &s in &rec.sources {
                seeded_in[s as usize].push(l as u32);
            }
        }
        let base_rate: Vec<f64> = (0..n)
            .map(|v| obs.statuses.infection_count(v as NodeId) as f64 / beta as f64)
            .collect();

        for u in 0..n as NodeId {
            let seeded = &seeded_in[u as usize];
            if seeded.is_empty() {
                continue; // u never seeded: its lift is unobservable
            }
            for v in 0..n as NodeId {
                if u == v {
                    continue;
                }
                let hits = seeded
                    .iter()
                    .filter(|&&l| obs.statuses.get(l as usize, v))
                    .count();
                let cond = hits as f64 / seeded.len() as f64;
                let lift = match self.variant {
                    LiftVariant::Difference => cond - base_rate[v as usize],
                    LiftVariant::Ratio => {
                        if base_rate[v as usize] == 0.0 {
                            0.0
                        } else {
                            cond / base_rate[v as usize]
                        }
                    }
                };
                out.push(u, v, lift);
            }
        }
        out
    }

    /// Infers the `m` pairs with the largest lifting effects.
    pub fn infer(&self, obs: &ObservationSet, m: usize) -> DiGraph {
        self.scores(obs).top_m(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, seed: u64, beta: usize) -> ObservationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, 0.5);
        IndependentCascade::new(truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.2,
                num_processes: beta,
            },
            &mut rng,
        )
    }

    #[test]
    fn direct_edges_have_positive_lift() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let obs = observe(&truth, 91, 800);
        let scores = Lift::new().scores(&obs);
        for (u, v, w) in scores.iter() {
            if truth.has_edge(u, v) {
                assert!(w > 0.0, "true edge ({u},{v}) has lift {w}");
            }
        }
    }

    #[test]
    fn budget_respected() {
        let truth = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let obs = observe(&truth, 92, 200);
        assert_eq!(Lift::new().infer(&obs, 4).edge_count(), 4);
    }

    #[test]
    fn recovers_some_structure() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 93, 800);
        let g = Lift::new().infer(&obs, truth.edge_count());
        let tp = g.edges().filter(|&(u, v)| truth.has_edge(u, v)).count();
        assert!(tp >= 2, "tp = {tp}, inferred {:?}", g.edge_vec());
    }

    #[test]
    fn ratio_variant_runs() {
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let obs = observe(&truth, 94, 200);
        let g = Lift::with_variant(LiftVariant::Ratio).infer(&obs, 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn empty_observations() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 95, 50).truncated(0);
        assert!(Lift::new().scores(&obs).is_empty());
        assert_eq!(Lift::new().infer(&obs, 3).edge_count(), 0);
    }
}
