//! PATH (Gripon & Rabbat, ISIT 2013): reconstructing a graph from path
//! traces.
//!
//! The original algorithm consumes *path-connected node sets* — unordered
//! sets of nodes known to lie on a single diffusion path of fixed length —
//! and inserts edges between the nodes that co-occur most frequently.
//! Exact path traces are not observable in natural diffusion (the reason
//! the TENDS paper excludes PATH from its comparison); as the closest
//! observable surrogate, this implementation extracts *consecutive-round
//! triples* `(u, v, w)` with `t_v = t_u + 1`, `t_w = t_v + 1` and
//! plausible adjacency, scores ordered pairs by their co-occurrence in
//! those triples, and returns the top-`m` pairs.
//!
//! Provided as an extension baseline.

use crate::weighted::WeightedGraph;
use diffnet_graph::{DiGraph, NodeId};
use diffnet_simulate::ObservationSet;
use std::collections::HashMap;

/// The PATH-style estimator.
#[derive(Clone, Debug, Default)]
pub struct PathReconstruction;

impl PathReconstruction {
    /// A PATH estimator.
    pub fn new() -> Self {
        PathReconstruction
    }

    /// Scores ordered pairs by co-occurrence in consecutive-round triples.
    pub fn scores(&self, obs: &ObservationSet) -> WeightedGraph {
        let n = obs.num_nodes();
        let mut pair_counts: HashMap<(NodeId, NodeId), u64> = HashMap::new();

        for rec in &obs.records {
            // Bucket infected nodes by round.
            let mut by_round: Vec<Vec<NodeId>> = Vec::new();
            for (i, &t) in rec.times.iter().enumerate() {
                if t == diffnet_simulate::UNINFECTED {
                    continue;
                }
                let t = t as usize;
                if by_round.len() <= t {
                    by_round.resize(t + 1, Vec::new());
                }
                by_round[t].push(i as NodeId);
            }
            // Triples spanning rounds (t, t+1, t+2): each (u, v, w) is a
            // candidate path u -> v -> w; credit both hops.
            for t in 0..by_round.len().saturating_sub(2) {
                for &u in &by_round[t] {
                    for &v in &by_round[t + 1] {
                        for &w in &by_round[t + 2] {
                            *pair_counts.entry((u, v)).or_insert(0) += 1;
                            *pair_counts.entry((v, w)).or_insert(0) += 1;
                        }
                    }
                }
            }
            // Two-round cascades still carry single-hop evidence.
            for t in 0..by_round.len().saturating_sub(1) {
                for &u in &by_round[t] {
                    for &v in &by_round[t + 1] {
                        *pair_counts.entry((u, v)).or_insert(0) += 1;
                    }
                }
            }
        }

        let mut out = WeightedGraph::new(n);
        let mut pairs: Vec<((NodeId, NodeId), u64)> = pair_counts.into_iter().collect();
        pairs.sort_unstable();
        for ((u, v), c) in pairs {
            out.push(u, v, c as f64);
        }
        out
    }

    /// Infers the `m` most frequently co-occurring pairs.
    pub fn infer(&self, obs: &ObservationSet, m: usize) -> DiGraph {
        self.scores(obs).top_m(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffnet_simulate::{EdgeProbs, IcConfig, IndependentCascade};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observe(truth: &DiGraph, seed: u64, beta: usize) -> ObservationSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = EdgeProbs::constant(truth, 0.6);
        IndependentCascade::new(truth, &probs).observe(
            IcConfig {
                initial_ratio: 0.15,
                num_processes: beta,
            },
            &mut rng,
        )
    }

    #[test]
    fn chain_pairs_dominate() {
        let truth = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let obs = observe(&truth, 96, 600);
        let g = PathReconstruction::new().infer(&obs, truth.edge_count());
        let tp = g.edges().filter(|&(u, v)| truth.has_edge(u, v)).count();
        assert!(tp >= 3, "tp = {tp}, inferred {:?}", g.edge_vec());
    }

    #[test]
    fn budget_respected() {
        let truth = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let obs = observe(&truth, 97, 100);
        assert!(PathReconstruction::new().infer(&obs, 2).edge_count() <= 2);
    }

    #[test]
    fn empty_observations() {
        let truth = DiGraph::from_edges(3, &[(0, 1)]);
        let obs = observe(&truth, 98, 50).truncated(0);
        assert!(PathReconstruction::new().scores(&obs).is_empty());
    }
}
