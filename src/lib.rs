#![warn(missing_docs)]
//! # diffnet
//!
//! A Rust reproduction of **TENDS** — *Statistical Estimation of Diffusion
//! Network Topologies* (Han, Tian, Zhang, Han, Huang, Gao; ICDE 2020) —
//! together with every substrate and baseline the paper's evaluation
//! depends on.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — directed-graph substrate: compact [`graph::DiGraph`], LFR
//!   benchmark and other generators, statistics, edge-list I/O.
//! * [`simulate`] — independent-cascade diffusion simulator, bit-packed
//!   status matrices, cascade/source records.
//! * [`datasets`] — the paper's evaluation networks: the Table-II LFR
//!   suite and NetSci-/DUNF-like topology models.
//! * [`tends`] — the paper's contribution: topology inference from final
//!   infection statuses only ([`tends::Tends`]).
//! * [`baselines`] — NetRate, MulTree, LIFT (paper baselines) plus NetInf
//!   and PATH (extensions).
//! * [`metrics`] — precision / recall / F-score and experiment reporting.
//! * [`apply`] — downstream uses of an inferred topology: influence
//!   maximization (greedy/CELF) and immunization.
//! * [`observe`] — zero-dependency instrumentation: phase timers, counters,
//!   and the structured [`observe::RunReport`] the CLI emits with
//!   `--run-report`.
//! * [`serve`] — a zero-dependency inference daemon: hand-rolled HTTP/1.1
//!   job API with a durable, checkpoint-backed queue ([`serve::Server`]).
//!
//! ## Quickstart
//!
//! ```
//! use diffnet::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. A hidden diffusion network (here: a small LFR benchmark graph).
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut lfr = Lfr::new(60, 4.0, 2.0);
//! lfr.orientation = Orientation::Reciprocal;
//! let truth = lfr.generate(&mut rng).expect("valid parameters");
//!
//! // 2. Observe β diffusion processes (final statuses only).
//! let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
//! let obs = IndependentCascade::new(&truth, &probs)
//!     .observe(IcConfig { initial_ratio: 0.15, num_processes: 150 }, &mut rng);
//!
//! // 3. Reconstruct the topology with TENDS and score it.
//! let inferred = Tends::new().reconstruct(&obs.statuses).expect("default search fits").graph;
//! let cmp = EdgeSetComparison::against_truth(&truth, &inferred);
//! println!("F-score: {:.3}", cmp.f_score());
//! ```

pub use diffnet_apply as apply;
pub use diffnet_baselines as baselines;
pub use diffnet_datasets as datasets;
pub use diffnet_graph as graph;
pub use diffnet_metrics as metrics;
pub use diffnet_observe as observe;
pub use diffnet_serve as serve;
pub use diffnet_simulate as simulate;
pub use diffnet_tends as tends;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use diffnet_apply::{
        celf_influence_maximization, estimate_spread, greedy_immunization,
        greedy_influence_maximization, SpreadEstimator,
    };
    pub use diffnet_baselines::{
        Lift, MulTree, NetInf, NetRate, PathReconstruction, WeightedGraph,
    };
    pub use diffnet_datasets::{dunf_like, lfr_suite, netsci_like, LfrSpec};
    pub use diffnet_graph::generators::{Lfr, Orientation};
    pub use diffnet_graph::{DiGraph, GraphBuilder, NodeId};
    pub use diffnet_metrics::{timed, EdgeSetComparison, Stopwatch};
    pub use diffnet_observe::{Recorder, RunReport};
    pub use diffnet_simulate::{
        CountsWorkspace, DiffusionRecord, EdgeProbs, IcConfig, IndependentCascade, ObservationSet,
        StatusMatrix,
    };
    pub use diffnet_tends::{
        CorrelationMeasure, GreedyStrategy, SearchParams, Tends, TendsConfig, TendsResult,
        ThresholdMode,
    };
}
