//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Exposes the API subset this workspace's benches use ([`Criterion`],
//! [`black_box`], [`BenchmarkId`], groups, [`criterion_group!`] /
//! [`criterion_main!`]) and reports a median wall-clock time per iteration
//! for every benchmark, without criterion's statistical analysis, plots or
//! baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark's measurement phase targets, total.
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of an
    /// automatically chosen batch size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow the batch until it takes ≥ ~1/10
        // of the per-sample budget, so cheap routines aren't noise-bound.
        let budget = TARGET_MEASURE / self.sample_size.max(1) as u32;
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= budget / 10 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<50} median {:>12} [{} .. {}]",
            fmt_duration(median),
            fmt_duration(lo),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks (optionally with its own sample size).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let sample_size = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        b.report(&id);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore criterion-style CLI flags (`--bench`, ...).
            let _ = std::env::args();
            $($group();)+
        }
    };
}
