//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full range of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (used as `any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
