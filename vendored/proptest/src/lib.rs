//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any::<bool>()`,
//! [`collection::vec`], [`option::of`], `prop_assert!` / `prop_assert_eq!`
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: cases are drawn from a fixed seeded
//! generator (deterministic across runs), and failing inputs are **not
//! shrunk** — the panic message reports the raw failing case instead.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual single-import surface.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(__case);
                // The body runs in a `Result` context, as in real proptest:
                // `prop_assert!` returns `Err`, early exits `return Ok(())`.
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::new_value(
                            &($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest case {__case} failed: {__msg}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property assertion; fails the current case (without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property equality assertion; fails the current case (without shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}
