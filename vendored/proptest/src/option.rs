//! `Option<T>` strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Option<T>`: `None` with probability ¼, otherwise `Some`
/// of the inner strategy (proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
