//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable size specifications for [`vec`].
pub trait IntoSizeRange {
    /// Lower (inclusive) and upper (exclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, len_end) = size.bounds();
    assert!(min_len < len_end, "empty length range");
    VecStrategy {
        element,
        min_len,
        len_end,
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    len_end: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..self.len_end);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
