//! Test-runner configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic per-case generator used by the `proptest!` expansion.
#[doc(hidden)]
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ u64::from(case))
}
