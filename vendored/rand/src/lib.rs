//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the external `rand` dependency is replaced by this vendored
//! implementation of exactly the 0.8-era API surface the workspace uses:
//!
//! * [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the extension
//!   trait [`Rng`] (`gen`, `gen_range`, `gen_bool`);
//! * [`rngs::StdRng`], a seedable deterministic generator.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong and fast, but **not** the ChaCha12 stream the real `rand 0.8`
//! uses, so seeded sequences differ from upstream `rand`. All uses in this
//! workspace are simulations and tests that only require a good seeded
//! PRNG, not a specific stream.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// same expansion scheme `rand_core 0.6` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) by multiply-shift with
/// rejection of the biased zone.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Biased zone: reject and redraw (vanishingly rare for small spans).
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Stream differs from upstream `rand`'s ChaCha12-based `StdRng`; see
    /// the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro's all-zero state is a fixed point; nudge it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Kept for API compatibility with `rand::seq` imports.
pub mod seq {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
