//! Timestamp-free inference vs. cascade-based inference under timestamp
//! noise — the paper's core motivation, §I.
//!
//! Cascade-based methods (NetRate, MulTree) consume exact infection
//! timestamps. In reality timestamps are distorted by incubation periods
//! and monitoring lag. This example corrupts a growing fraction of the
//! recorded timestamps with random incubation delays and shows that the
//! cascade-based baselines degrade while TENDS — which never looks at
//! timestamps — is untouched by construction.
//!
//! ```sh
//! cargo run --release --example timestamp_free_vs_cascades
//! ```

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adds a random incubation delay (1–3 rounds) to the recorded infection
/// time of each non-seed infected node, independently with probability
/// `noise`. Final statuses are untouched — only the *timing* knowledge
/// degrades, exactly like late symptom onset.
fn corrupt_timestamps(obs: &ObservationSet, noise: f64, rng: &mut StdRng) -> ObservationSet {
    let records: Vec<DiffusionRecord> = obs
        .records
        .iter()
        .map(|rec| {
            let times = rec
                .times
                .iter()
                .map(|&t| {
                    if t == diffnet::simulate::UNINFECTED || t == 0 || !rng.gen_bool(noise) {
                        t
                    } else {
                        t + rng.gen_range(1u32..=3)
                    }
                })
                .collect();
            DiffusionRecord {
                sources: rec.sources.clone(),
                times,
            }
        })
        .collect();
    ObservationSet::new(obs.statuses.clone(), records)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    let truth = netsci_like(31);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    let clean = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.15,
            num_processes: 150,
        },
        &mut rng,
    );
    let m = truth.edge_count();

    println!(
        "network: {} nodes, {} edges; 150 diffusion processes observed\n",
        truth.node_count(),
        m
    );
    println!(
        "{:>18}  {:>7}  {:>9}  {:>9}",
        "timestamp noise", "TENDS", "NetRate", "MulTree"
    );

    for noise in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let obs = corrupt_timestamps(&clean, noise, &mut rng);

        // TENDS reads only the status matrix — unaffected by construction.
        let tends_g = Tends::new()
            .reconstruct(&obs.statuses)
            .expect("default search fits")
            .graph;
        let tends_f = EdgeSetComparison::against_truth(&truth, &tends_g).f_score();

        // NetRate gets its preferential best-threshold treatment.
        let (netrate_g, _) = NetRate::new().infer(&obs).best_fscore_graph(&truth);
        let netrate_f = EdgeSetComparison::against_truth(&truth, &netrate_g).f_score();

        let multree_g = MulTree::new().infer(&obs, m);
        let multree_f = EdgeSetComparison::against_truth(&truth, &multree_g).f_score();

        println!(
            "{:>17.0}%  {:>7.3}  {:>9.3}  {:>9.3}",
            100.0 * noise,
            tends_f,
            netrate_f,
            multree_f
        );
    }

    println!(
        "\nTENDS is identical in every row because it never reads timestamps; \
         the cascade-based baselines pay for every corrupted observation."
    );
}
