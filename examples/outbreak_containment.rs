//! Outbreak containment: immunizing a population using a contact network
//! that was *inferred* from past outbreak outcomes.
//!
//! The full loop the paper motivates: (1) observe who got infected in
//! historical outbreaks — no timestamps, no patient-zero records; (2)
//! reconstruct the contact topology with TENDS; (3) spend a limited
//! vaccine budget on the nodes whose removal most reduces future spread;
//! (4) verify the effect against the (normally unknowable) true network.
//!
//! ```sh
//! cargo run --release --example outbreak_containment
//! ```

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Expected infections from random 5%-seeding with `immunized` removed
/// from the TRUE network (the evaluation oracle).
fn true_spread(truth: &DiGraph, probs: &EdgeProbs, immunized: &[NodeId], rng: &mut StdRng) -> f64 {
    // Strip the immunized nodes out of the true dynamics.
    let blocked: Vec<bool> = {
        let mut b = vec![false; truth.node_count()];
        for &v in immunized {
            b[v as usize] = true;
        }
        b
    };
    let mut builder = GraphBuilder::new(truth.node_count());
    let mut kept_probs = Vec::new();
    for (u, v) in truth.edges() {
        if !blocked[u as usize] && !blocked[v as usize] {
            builder.add_edge(u, v);
            kept_probs.push(probs.get(truth, u, v).expect("edge exists"));
        }
    }
    let stripped = builder.build();
    let stripped_probs = EdgeProbs::from_vec(&stripped, kept_probs);
    let sim = IndependentCascade::new(&stripped, &stripped_probs);

    let n = truth.node_count();
    let seeds_per_outbreak = n / 20; // 5%
    let trials = 300;
    let mut pool: Vec<NodeId> = (0..n as NodeId).filter(|&v| !blocked[v as usize]).collect();
    let mut total = 0usize;
    for _ in 0..trials {
        for i in 0..seeds_per_outbreak {
            let j = rand::Rng::gen_range(rng, i..pool.len());
            pool.swap(i, j);
        }
        total += sim
            .run_once(&pool[..seeds_per_outbreak], rng)
            .infected_count();
    }
    total as f64 / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    // The true contact network (hidden from the health authority).
    let truth = netsci_like(23);
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    println!(
        "population: {} individuals, {} (hidden) contact edges",
        truth.node_count(),
        truth.edge_count()
    );

    // Step 1: historical outbreak records — final statuses only.
    let history = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.05,
            num_processes: 250,
        },
        &mut rng,
    );
    println!("observed {} historical outbreaks", history.num_processes());

    // Step 2: reconstruct the contact network.
    let inferred = Tends::new()
        .reconstruct(&history.statuses)
        .expect("default search fits")
        .graph;
    let cmp = EdgeSetComparison::against_truth(&truth, &inferred);
    println!(
        "reconstructed topology: {} edges (precision {:.2}, recall {:.2})",
        inferred.edge_count(),
        cmp.precision(),
        cmp.recall()
    );

    // Step 3: choose whom to vaccinate — using ONLY the inferred network.
    let budget = 15;
    let inferred_probs = EdgeProbs::constant(&inferred, 0.3);
    let plan = greedy_immunization(
        &inferred,
        &inferred_probs,
        budget,
        truth.node_count() / 20,
        60,
        10,
        &mut rng,
    );
    println!("vaccination plan ({budget} doses): {plan:?}");

    // Step 4: evaluate on the true network.
    let baseline = true_spread(&truth, &probs, &[], &mut rng);
    let planned = true_spread(&truth, &probs, &plan, &mut rng);
    // Naive comparison: vaccinate random individuals.
    let random_plan: Vec<NodeId> = (0..budget as NodeId).collect();
    let random = true_spread(&truth, &probs, &random_plan, &mut rng);

    println!("\nexpected infections per future outbreak (5% random seeding):");
    println!("  no vaccination:                {baseline:.1}");
    println!("  {budget} random doses:              {random:.1}");
    println!("  {budget} doses via inferred graph:  {planned:.1}");
    println!(
        "\nspread reduction vs no vaccination: random doses {:.1}%, inferred-graph doses {:.1}%",
        100.0 * (baseline - random) / baseline,
        100.0 * (baseline - planned) / baseline
    );
}
