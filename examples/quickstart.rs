//! Quickstart: hide a network, observe diffusion outcomes, reconstruct the
//! topology with TENDS, and score the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. The hidden ground truth: an LFR benchmark graph with 100 nodes
    //    and average degree 4, as in the paper's LFR1 configuration.
    let mut lfr = Lfr::new(100, 4.0, 2.0);
    lfr.orientation = Orientation::Reciprocal;
    let truth = lfr.generate(&mut rng).expect("valid LFR parameters");
    println!(
        "hidden network: {} nodes, {} directed edges",
        truth.node_count(),
        truth.edge_count()
    );

    // 2. Observe β = 150 diffusion processes. Per the paper's setup, each
    //    edge transmits with probability ~N(0.3, 0.05²) and each process
    //    seeds 15% of the nodes. Only the FINAL statuses go to TENDS.
    let probs = EdgeProbs::gaussian(&truth, 0.3, 0.05, &mut rng);
    let observations = IndependentCascade::new(&truth, &probs).observe(
        IcConfig {
            initial_ratio: 0.15,
            num_processes: 150,
        },
        &mut rng,
    );
    println!(
        "observed {} processes; {:.0}% of node-statuses infected overall",
        observations.num_processes(),
        100.0 * observations.statuses.infected_fraction()
    );

    // 3. Reconstruct the topology from the status matrix alone.
    let (result, seconds) = timed(|| {
        Tends::new()
            .reconstruct(&observations.statuses)
            .expect("default search fits")
    });
    println!(
        "TENDS: inferred {} edges in {:.3}s (pruning threshold τ = {:.4})",
        result.graph.edge_count(),
        seconds,
        result.tau
    );

    // 4. Score against the hidden truth.
    let cmp = EdgeSetComparison::against_truth(&truth, &result.graph);
    println!(
        "precision {:.3}  recall {:.3}  F-score {:.3}",
        cmp.precision(),
        cmp.recall(),
        cmp.f_score()
    );
}
