//! Viral marketing: inferring an influence graph from campaign outcomes,
//! then using it to seed the next campaign.
//!
//! A platform runs repeated promotion campaigns on a microblog network
//! (the DUNF-like follow graph). For each campaign it knows which users it
//! paid to promote the product (the seeds) and which users eventually
//! adopted — but not *when* anyone adopted or who convinced whom. TENDS
//! reconstructs the influence topology from adoption outcomes alone; the
//! inferred graph is then used to pick seeds for a fresh campaign, and the
//! realized spread is compared against random seeding and against seeding
//! on the true (normally unknowable) graph.
//!
//! ```sh
//! cargo run --release --example viral_marketing
//! ```

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Picks the `k` nodes with the largest out-degree in `g` — the simplest
/// influence-maximization heuristic; the point here is the *graph* it runs
/// on, not the heuristic.
fn top_out_degree(g: &DiGraph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_unstable_by_key(|&u| std::cmp::Reverse(g.out_degree(u)));
    nodes.truncate(k);
    nodes
}

/// Average adoptions over repeated campaigns from the given seed set.
fn expected_spread(
    sim: &IndependentCascade,
    seeds: &[NodeId],
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    let total: usize = (0..trials)
        .map(|_| sim.run_once(seeds, rng).infected_count())
        .sum();
    total as f64 / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // The real influence network (unknown to the marketer).
    let influence = dunf_like(2024);
    println!(
        "social platform: {} users, {} influence edges (hidden)",
        influence.node_count(),
        influence.edge_count()
    );

    // Historical campaigns: 200 promotions, each seeding 10% of users;
    // per-edge adoption influence ~N(0.3, 0.05²).
    let probs = EdgeProbs::gaussian(&influence, 0.3, 0.05, &mut rng);
    let sim = IndependentCascade::new(&influence, &probs);
    let campaigns = sim.observe(
        IcConfig {
            initial_ratio: 0.10,
            num_processes: 200,
        },
        &mut rng,
    );
    println!(
        "observed {} campaigns (adoption outcomes only)",
        campaigns.num_processes()
    );

    // Reconstruct the influence graph from adoption statuses.
    let (result, secs) = timed(|| {
        Tends::new()
            .reconstruct(&campaigns.statuses)
            .expect("default search fits")
    });
    let cmp = EdgeSetComparison::against_truth(&influence, &result.graph);
    println!(
        "TENDS reconstruction: {} edges in {:.2}s (precision {:.3}, recall {:.3}, F {:.3})",
        result.graph.edge_count(),
        secs,
        cmp.precision(),
        cmp.recall(),
        cmp.f_score()
    );

    // Use the inferred graph to seed the next campaign.
    let budget = 20;
    let trials = 200;
    let inferred_seeds = top_out_degree(&result.graph, budget);
    let oracle_seeds = top_out_degree(&influence, budget);
    let random_seeds: Vec<NodeId> = (0..budget as NodeId).collect();

    // A principled alternative to the degree heuristic: CELF influence
    // maximization *on the inferred graph* (it only needs a topology and
    // edge-strength estimates, both of which inference provides).
    let inferred_probs = EdgeProbs::constant(&result.graph, 0.3);
    let est = SpreadEstimator::new(&result.graph, &inferred_probs, 30);
    let (celf_seeds, _) = celf_influence_maximization(&est, budget, &mut rng);

    let inferred_spread = expected_spread(&sim, &inferred_seeds, trials, &mut rng);
    let celf_spread = expected_spread(&sim, &celf_seeds, trials, &mut rng);
    let oracle_spread = expected_spread(&sim, &oracle_seeds, trials, &mut rng);
    let random_spread = expected_spread(&sim, &random_seeds, trials, &mut rng);

    println!("\nnext campaign, {budget} seeds, expected adopters over {trials} trials:");
    println!("  random seeding:                 {random_spread:.1}");
    println!("  top-degree on TENDS graph:      {inferred_spread:.1}");
    println!("  CELF on TENDS graph:            {celf_spread:.1}");
    println!("  top-degree on true graph:       {oracle_spread:.1} (oracle)");
    println!(
        "\nthe inferred topology recovers {:.0}% of the oracle's advantage over random",
        100.0 * (inferred_spread - random_spread) / (oracle_spread - random_spread).max(1e-9)
    );
}
