//! Epidemic surveillance: reconstructing a contact network from outbreak
//! outcomes alone.
//!
//! The paper's motivating scenario: in disease propagation, infection
//! *timestamps* are unreliable (incubation periods hide the true moment of
//! infection) or simply not collected; what a health authority reliably
//! knows at the end of an outbreak is **who was infected**. This example
//! reconstructs a clustered contact network (households/wards bridged by
//! commuters — the NetSci-like topology) from a growing number of observed
//! outbreaks, showing how reconstruction quality improves with more data —
//! the paper's Fig. 8 effect.
//!
//! ```sh
//! cargo run --release --example epidemic_surveillance
//! ```

use diffnet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // A contact network: dense local clusters, sparse bridges.
    let contact_network = netsci_like(11);
    println!(
        "contact network: {} individuals, {} contact edges",
        contact_network.node_count(),
        contact_network.edge_count()
    );

    // Disease parameters: 30% transmission per contact, 5% of the
    // population initially exposed per outbreak season.
    let transmission = EdgeProbs::gaussian(&contact_network, 0.3, 0.05, &mut rng);
    let sim = IndependentCascade::new(&contact_network, &transmission);

    // Record 250 outbreak seasons once; surveillance programs with smaller
    // budgets see a prefix of them.
    let all_outbreaks = sim.observe(
        IcConfig {
            initial_ratio: 0.05,
            num_processes: 250,
        },
        &mut rng,
    );

    println!("\noutbreaks observed -> reconstruction quality (TENDS, statuses only)");
    println!(
        "{:>10}  {:>9}  {:>7}  {:>7}  {:>8}",
        "outbreaks", "precision", "recall", "F-score", "time (s)"
    );
    for budget in [50usize, 100, 150, 200, 250] {
        let observed = all_outbreaks.truncated(budget);
        let (result, secs) = timed(|| {
            Tends::new()
                .reconstruct(&observed.statuses)
                .expect("default search fits")
        });
        let cmp = EdgeSetComparison::against_truth(&contact_network, &result.graph);
        println!(
            "{budget:>10}  {:>9.3}  {:>7.3}  {:>7.3}  {:>8.3}",
            cmp.precision(),
            cmp.recall(),
            cmp.f_score(),
            secs
        );
    }

    // With the full record, what do the inferred contacts get us?
    let inferred = Tends::new()
        .reconstruct(&all_outbreaks.statuses)
        .expect("default search fits")
        .graph;
    let cmp = EdgeSetComparison::against_truth(&contact_network, &inferred);
    println!(
        "\nfinal reconstruction: {} of {} true contact edges recovered ({} spurious)",
        cmp.true_positives,
        contact_network.edge_count(),
        cmp.false_positives
    );
    println!(
        "an intervention planner can now target bridges and hubs of the \
         inferred network without ever having observed a single infection time"
    );
}
